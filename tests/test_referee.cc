#include "core/rost/referee.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/rost/rost.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace omcast::core {
namespace {

using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;

class RefereeTest : public ::testing::Test {
 protected:
  RefereeTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
    RostParams p;
    p.use_referees = true;
    p.switching_interval_s = 1e8;  // manual switching only
    auto protocol = std::make_unique<RostProtocol>(p);
    rost_ = protocol.get();
    session_ = std::make_unique<Session>(sim_, *topology_, std::move(protocol),
                                         SessionParams{}, 5);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<Session> session_;
  RostProtocol* rost_ = nullptr;
};

TEST_F(RefereeTest, EnrollsOnFirstAttach) {
  // Seed some potential referees first.
  for (int i = 0; i < 10; ++i) session_->InjectMember(1.0, 1e9);
  const NodeId a = session_->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  EXPECT_TRUE(rost_->referees().IsEnrolled(a));
}

TEST_F(RefereeTest, VerifiedValuesMatchGroundTruth) {
  for (int i = 0; i < 10; ++i) session_->InjectMember(1.0, 1e9);
  const NodeId a = session_->InjectMember(2.5, 1e9);
  sim_.RunUntil(100.0);
  EXPECT_NEAR(rost_->referees().VerifiedBandwidth(*session_, a), 2.5, 1e-12);
  EXPECT_NEAR(rost_->referees().VerifiedAge(*session_, a, sim_.now()),
              100.0, 1e-9);
}

TEST_F(RefereeTest, CheaterClaimsAreIgnoredWithReferees) {
  for (int i = 0; i < 10; ++i) session_->InjectMember(1.0, 1e9);
  const NodeId cheater = session_->InjectMember(0.9, 1e9);
  sim_.RunUntil(10.0);
  overlay::Member& m = session_->tree().Get(cheater);
  m.reported_bandwidth = 100.0;
  m.reported_age_bonus = 1e7;
  // Claimed BTP is enormous; the referee-attested one is honest.
  EXPECT_GT(m.ClaimedBtp(sim_.now()), 1e8);
  EXPECT_NEAR(rost_->EffectiveBtp(*session_, cheater), 0.9 * 10.0, 1e-6);
  EXPECT_NEAR(rost_->EffectiveBandwidth(*session_, cheater), 0.9, 1e-12);
}

TEST_F(RefereeTest, CheaterCannotClimbWithReferees) {
  session_->tree().SetCapacity(kRootId, 1);
  const NodeId honest = session_->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  ASSERT_EQ(session_->tree().Parent(honest), kRootId);
  const NodeId cheater = session_->InjectMember(1.0, 1e9);
  sim_.RunUntil(2.0);
  ASSERT_TRUE(session_->tree().IsRooted(cheater));
  overlay::Member& m = session_->tree().Get(cheater);
  m.reported_bandwidth = 100.0;
  m.reported_age_bonus = 1e7;
  rost_->CheckSwitchNow(*session_, cheater);
  // Verified bandwidth 1.0 < honest's 2.0: no switch.
  EXPECT_NE(session_->tree().Layer(cheater), 1);
  EXPECT_EQ(rost_->switches_performed(), 0);
}

TEST_F(RefereeTest, CheaterClimbsWithoutReferees) {
  // Same situation but referees disabled: the claimed values drive the
  // switch and the cheater takes over layer 1.
  sim::Simulator sim;
  RostParams p;
  p.use_referees = false;
  p.switching_interval_s = 1e8;
  auto protocol = std::make_unique<RostProtocol>(p);
  RostProtocol* rost = protocol.get();
  Session session(sim, *topology_, std::move(protocol), SessionParams{}, 5);
  session.tree().SetCapacity(kRootId, 1);
  const NodeId honest = session.InjectMember(2.0, 1e9);
  sim.RunUntil(1.0);
  ASSERT_EQ(session.tree().Parent(honest), kRootId);
  const NodeId cheater = session.InjectMember(1.0, 1e9);
  sim.RunUntil(2.0);
  ASSERT_EQ(session.tree().Parent(cheater), honest);
  overlay::Member& m = session.tree().Get(cheater);
  m.reported_bandwidth = 100.0;
  m.reported_age_bonus = 1e7;
  rost->CheckSwitchNow(session, cheater);
  EXPECT_EQ(session.tree().Parent(cheater), kRootId);
  EXPECT_EQ(rost->switches_performed(), 1);
}

TEST_F(RefereeTest, DeadRefereesAreReplaced) {
  std::vector<NodeId> pool;
  for (int i = 0; i < 10; ++i) pool.push_back(session_->InjectMember(1.0, 1e9));
  const NodeId a = session_->InjectMember(2.0, 1e9);
  sim_.RunUntil(10.0);
  // Kill most of the pool: some referees likely die; verification must
  // still return the attested (pre-death) values via repair.
  for (int i = 0; i < 8; ++i) session_->DepartNow(pool[static_cast<std::size_t>(i)]);
  const double age = rost_->referees().VerifiedAge(*session_, a, sim_.now());
  const double bw = rost_->referees().VerifiedBandwidth(*session_, a);
  EXPECT_NEAR(bw, 2.0, 1e-12);
  EXPECT_NEAR(age, 10.0, 1e-9);
}

TEST_F(RefereeTest, TotalWitnessLossResetsAttestation) {
  // If every referee dies before repair, the attested age restarts (the
  // member cannot prove its earlier history) and bandwidth is re-measured.
  std::vector<NodeId> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(session_->InjectMember(1.0, 1e9));
  const NodeId a = session_->InjectMember(2.0, 1e9);
  sim_.RunUntil(50.0);
  // Kill the entire candidate pool: all referees are gone at once.
  for (NodeId p : pool)
    if (session_->tree().Alive(p)) session_->DepartNow(p);
  const long resets_before = rost_->referees().attestation_resets();
  const double age = rost_->referees().VerifiedAge(*session_, a, sim_.now());
  EXPECT_GT(rost_->referees().attestation_resets(), resets_before);
  EXPECT_NEAR(age, 0.0, 1e-9);  // provable age restarted just now
  // Bandwidth re-measurement returns the honest actual value.
  EXPECT_NEAR(rost_->referees().VerifiedBandwidth(*session_, a), 2.0, 1e-12);
}

TEST_F(RefereeTest, RageAndRbwMustExceedOne) {
  RefereeParams p;
  p.age_referees = 1;
  EXPECT_DEATH(RefereeService{p}, "r_age");
  p.age_referees = 2;
  p.bw_referees = 0;
  EXPECT_DEATH(RefereeService{p}, "r_bw");
}

}  // namespace
}  // namespace omcast::core
