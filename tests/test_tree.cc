#include "overlay/tree.h"

#include <gtest/gtest.h>

namespace omcast::overlay {
namespace {

// A tiny fixture: root (id 0) with generous capacity at host 0.
class TreeTest : public ::testing::Test {
 protected:
  TreeTest() : tree_(0, 100.0) {}

  NodeId Add(double bandwidth, sim::Time join = 0.0, sim::Time life = 1e9) {
    return tree_.CreateMember(static_cast<net::HostId>(next_host_++),
                              bandwidth, join, life);
  }

  Tree tree_;
  int next_host_ = 1;
};

TEST_F(TreeTest, RootIsAliveAndInTree) {
  EXPECT_TRUE(tree_.Alive(kRootId));
  EXPECT_TRUE(tree_.InTree(kRootId));
  EXPECT_EQ(tree_.Layer(kRootId), 0);
  EXPECT_EQ(tree_.Capacity(kRootId), 100);
  EXPECT_TRUE(tree_.Get(kRootId).IsRoot());
}

TEST_F(TreeTest, CreateMemberStartsDetached) {
  const NodeId a = Add(2.0);
  EXPECT_TRUE(tree_.Alive(a));
  EXPECT_FALSE(tree_.InTree(a));
  EXPECT_EQ(tree_.Parent(a), kNoNode);
  EXPECT_EQ(tree_.Capacity(a), 2);
}

TEST_F(TreeTest, CapacityIsFloorOfBandwidth) {
  EXPECT_EQ(tree_.Capacity(Add(0.5)), 0);   // free-rider
  EXPECT_EQ(tree_.Capacity(Add(1.0)), 1);
  EXPECT_EQ(tree_.Capacity(Add(2.9)), 2);
  EXPECT_EQ(tree_.Capacity(Add(100.0)), 100);
}

TEST_F(TreeTest, AttachSetsLayersAndLinks) {
  const NodeId a = Add(2.0);
  const NodeId b = Add(1.0);
  tree_.Attach(kRootId, a);
  tree_.Attach(a, b);
  EXPECT_EQ(tree_.Layer(a), 1);
  EXPECT_EQ(tree_.Layer(b), 2);
  EXPECT_EQ(tree_.Parent(b), a);
  ASSERT_EQ(tree_.Children(a).size(), 1u);
  tree_.CheckInvariants();
}

TEST_F(TreeTest, AttachFragmentRecomputesSubtreeLayers) {
  const NodeId a = Add(3.0);
  const NodeId b = Add(2.0);
  const NodeId c = Add(1.0);
  tree_.Attach(kRootId, a);
  tree_.Attach(a, b);
  tree_.Attach(b, c);
  tree_.Detach(b);  // fragment {b, c} floats
  const NodeId d = Add(5.0);
  tree_.Attach(kRootId, d);
  tree_.Attach(d, b);  // re-attach the fragment one level deeper
  EXPECT_EQ(tree_.Layer(b), 2);
  EXPECT_EQ(tree_.Layer(c), 3);
  tree_.CheckInvariants();
}

TEST_F(TreeTest, DetachKeepsChildren) {
  const NodeId a = Add(2.0);
  const NodeId b = Add(0.5);
  tree_.Attach(kRootId, a);
  tree_.Attach(a, b);
  tree_.Detach(a);
  EXPECT_EQ(tree_.Parent(a), kNoNode);
  EXPECT_FALSE(tree_.InTree(a));
  EXPECT_EQ(tree_.Parent(b), a);  // subtree intact
  EXPECT_FALSE(tree_.IsRooted(a));
  EXPECT_FALSE(tree_.IsRooted(b));
}

TEST_F(TreeTest, RemoveFromTreeOrphansEachChild) {
  const NodeId a = Add(3.0);
  const NodeId b = Add(1.0);
  const NodeId c = Add(1.0);
  tree_.Attach(kRootId, a);
  tree_.Attach(a, b);
  tree_.Attach(a, c);
  const auto orphans = tree_.RemoveFromTree(a);
  EXPECT_EQ(orphans.size(), 2u);
  EXPECT_EQ(tree_.Parent(b), kNoNode);
  EXPECT_EQ(tree_.Parent(c), kNoNode);
  EXPECT_TRUE(tree_.Children(a).empty());
}

TEST_F(TreeTest, IsInSubtreeOf) {
  const NodeId a = Add(2.0);
  const NodeId b = Add(2.0);
  const NodeId c = Add(2.0);
  tree_.Attach(kRootId, a);
  tree_.Attach(a, b);
  tree_.Attach(b, c);
  EXPECT_TRUE(tree_.IsInSubtreeOf(c, a));
  EXPECT_TRUE(tree_.IsInSubtreeOf(a, a));
  EXPECT_FALSE(tree_.IsInSubtreeOf(a, c));
  EXPECT_TRUE(tree_.IsInSubtreeOf(c, kRootId));
}

TEST_F(TreeTest, ForEachDescendantVisitsWholeSubtreeOnce) {
  const NodeId a = Add(3.0);
  const NodeId b = Add(2.0);
  const NodeId c = Add(2.0);
  const NodeId d = Add(1.0);
  tree_.Attach(kRootId, a);
  tree_.Attach(a, b);
  tree_.Attach(a, c);
  tree_.Attach(b, d);
  std::vector<NodeId> seen;
  tree_.ForEachDescendant(a, [&](NodeId id) { seen.push_back(id); });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(tree_.CountDescendants(a), 3u);
  EXPECT_EQ(tree_.CountDescendants(d), 0u);
}

TEST_F(TreeTest, SharedPathEdgesMatchesLcaDepth) {
  // root -> a; a -> {b, c}; b -> d.
  const NodeId a = Add(3.0);
  const NodeId b = Add(2.0);
  const NodeId c = Add(1.0);
  const NodeId d = Add(1.0);
  tree_.Attach(kRootId, a);
  tree_.Attach(a, b);
  tree_.Attach(a, c);
  tree_.Attach(b, d);
  EXPECT_EQ(tree_.SharedPathEdges(b, c), 1);  // share root->a
  EXPECT_EQ(tree_.SharedPathEdges(d, c), 1);
  EXPECT_EQ(tree_.SharedPathEdges(d, b), 2);  // share root->a->b
  EXPECT_EQ(tree_.SharedPathEdges(a, c), 1);  // a is on c's path
  EXPECT_EQ(tree_.SharedPathEdges(b, b), 2);  // with itself: its whole path
  EXPECT_EQ(tree_.SharedPathEdges(a, kRootId), 0);
}

TEST_F(TreeTest, DepthTracksDeepestRootedMember) {
  EXPECT_EQ(tree_.Depth(), 0);
  const NodeId a = Add(2.0);
  const NodeId b = Add(2.0);
  tree_.Attach(kRootId, a);
  tree_.Attach(a, b);
  EXPECT_EQ(tree_.Depth(), 2);
  tree_.Detach(a);  // fragment no longer counted
  EXPECT_EQ(tree_.Depth(), 0);
}

TEST_F(TreeTest, RootHasSentinelOldAge) {
  // The source must dominate every member under time ordering and BTP.
  EXPECT_LT(tree_.Get(kRootId).join_time, -1e9);
  EXPECT_GT(tree_.Get(kRootId).Btp(0.0), 1e10);
}

TEST_F(TreeTest, BtpIsBandwidthTimesAge) {
  const NodeId a = Add(2.5, /*join=*/100.0);
  EXPECT_DOUBLE_EQ(tree_.Get(a).Btp(160.0), 2.5 * 60.0);
  EXPECT_DOUBLE_EQ(tree_.Get(a).Age(160.0), 60.0);
}

TEST_F(TreeTest, ClaimedBtpUsesReportedValues) {
  const NodeId a = Add(1.0, /*join=*/0.0);
  Member& m = tree_.Get(a);
  m.reported_bandwidth = 50.0;
  m.reported_age_bonus = 1000.0;
  EXPECT_DOUBLE_EQ(m.ClaimedBtp(10.0), 50.0 * 1010.0);
  EXPECT_DOUBLE_EQ(m.Btp(10.0), 1.0 * 10.0);  // actual unaffected
}

TEST_F(TreeTest, AttachRejectsOverCapacity) {
  const NodeId a = Add(1.0);
  const NodeId b = Add(0.5);
  const NodeId c = Add(0.5);
  tree_.Attach(kRootId, a);
  tree_.Attach(a, b);
  EXPECT_DEATH(tree_.Attach(a, c), "out-degree");
}

TEST_F(TreeTest, AttachRejectsCycle) {
  const NodeId a = Add(2.0);
  const NodeId b = Add(2.0);
  tree_.Attach(kRootId, a);
  tree_.Attach(a, b);
  tree_.Detach(a);
  EXPECT_DEATH(tree_.Attach(b, a), "cycle");
}

TEST_F(TreeTest, AttachRejectsUnrootedParent) {
  const NodeId a = Add(2.0);
  const NodeId b = Add(2.0);
  EXPECT_DEATH(tree_.Attach(a, b), "root");
}

TEST_F(TreeTest, AttachRejectsDoubleAttach) {
  const NodeId a = Add(2.0);
  tree_.Attach(kRootId, a);
  EXPECT_DEATH(tree_.Attach(kRootId, a), "already attached");
}

}  // namespace
}  // namespace omcast::overlay
