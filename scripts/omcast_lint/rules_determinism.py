"""Reproducibility rules: the original lint_determinism.py detectors, plus
the protocol-aware unordered-sink and seed-narrowing rules.

Rationale recap: every figure comes from a deterministic seeded simulation,
so unseeded randomness, host-clock reads, hash-order iteration, pointer-
valued ties, indeterminate members, and silent seed truncation all
invalidate the bit-identical-replay guarantee the digest tests enforce.
"""

from __future__ import annotations

import re

from .registry import rule
from .source import SourceFile, range_for_block

RAND_RE = re.compile(
    r"std::random_device|\brandom_device\b|\bsrand\s*\(|"
    r"(?<![:\w])s?rand\s*\(|\brand_r\s*\(|\bdrand48\s*\(|\blrand48\s*\(|"
    r"\bmrand48\s*\(|\barc4random\b|(?<![:\w.>])\brandom\s*\(\s*\)"
)

WALLCLOCK_RE = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)|"
    r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|"
    r"(?<![\w.>])(?:std::)?time\s*\(\s*(nullptr|NULL|0)\s*\)|"
    r"\blocaltime\b|\bgmtime\b|"
    # The conventional chrono-clock alias used by the profiler seam.
    r"\bClock::now\s*\(|"
    # Pulling <chrono> into simulation code is the gateway hazard; the two
    # legal seams (obs::SimProfiler, the runner's progress clock) carry the
    # allow annotation on the include itself.
    r"^\s*#\s*include\s*<chrono>"
)

UNORDERED_DECL_RE = re.compile(r"std::unordered_(map|set)\s*<")
UNORDERED_NAME_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<.*>\s*(\w+)\s*[;{=]")
RANGE_FOR_RE = re.compile(r"for\s*\(.*:\s*([\w.\->]+)\s*\)")

POINTER_SORT_RES = [
    re.compile(r"std::less\s*<[^<>]*\*\s*>"),
    re.compile(r"std::(map|set|multimap|multiset)\s*<[^<>,]*\*\s*[,>]"),
    re.compile(r"reinterpret_cast\s*<\s*(std::)?u?intptr_t\s*>"),
]

UNINIT_TYPE = (
    r"(?:const\s+)?"
    r"(?:bool|char|short|int|long|float|double|unsigned|std::size_t|"
    r"std::u?int(?:8|16|32|64|ptr)?_t|size_t|u?int(?:8|16|32|64)_t|"
    r"Time|sim::Time|NodeId|overlay::NodeId|net::HostId|HostId|EventId|"
    r"sim::EventId)"
)
UNINIT_MEMBER_RE = re.compile(
    r"^\s*" + UNINIT_TYPE + r"(?:\s+(?:const\s+)?)"
    r"(?:\s*[\w]+\s*,\s*)*[\w]+\s*;\s*$"
)
STRUCT_OPEN_RE = re.compile(r"\b(struct|class)\s+\w+[^;{]*\{")

TRACE_EMIT_RE = re.compile(r"(?:->|\.)\s*Emit\s*\(")
TRACE_WALLCLOCK_TOKEN_RE = re.compile(
    r"std::chrono|steady_clock|system_clock|high_resolution_clock|"
    r"\bWallMs\s*\(|\bwall_ms\b|\bgettimeofday\b|\bclock_gettime\b|"
    r"(?<![\w.>])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
)

# Calls that feed deterministic outputs: trace emissions, registry metrics,
# digest mixing, results fields. Iterating an unordered container to feed
# any of these makes the exported JSONL / registry snapshot / replay digest
# depend on libstdc++ bucket order.
SINK_RE = re.compile(
    r"\b(?:Emit|Count|Observe|SetGauge|MixU64|MixI64|MixDouble|MixBytes|"
    r"Digest)\s*\(|\b(?:metrics|samples|series|registry)\s*\[")

# Narrowing casts on seed/hash derivation lines: a 64-bit seed truncated to
# 32 bits silently collapses distinct grid cells onto one RNG stream.
NARROW_CAST_RE = re.compile(
    r"static_cast<\s*(?:std::)?(?:u?int(?:8|16|32)_t|"
    r"unsigned\s+(?:char|short|int)|unsigned|short|int|float|char)\s*>")
SEED_CTX_RE = re.compile(r"seed|hash|digest", re.IGNORECASE)


@rule("rand",
      "unseeded randomness (rand/srand/random_device/drand48/...) outside "
      "src/rand; route through the seeded rnd::Rng substrate")
def find_rand(sf: SourceFile):
    if "src/rand" in sf.path.as_posix():
        return []  # the seeded substrate itself
    hits = []
    for i, line in enumerate(sf.code_lines):
        if RAND_RE.search(line):
            hits.append((i, "unseeded randomness; route through rnd::Rng "
                            "(src/rand/rng.h) so runs stay reproducible"))
    return hits


@rule("wallclock",
      "host-clock reads (or a bare <chrono> include) in simulation code; "
      "simulation time is sim::Simulator::now()")
def find_wallclock(sf: SourceFile):
    hits = []
    for i, line in enumerate(sf.code_lines):
        if WALLCLOCK_RE.search(line):
            hits.append((i, "wall-clock time in simulation code; use "
                            "sim::Simulator::now() (virtual time) instead"))
    return hits


def _unordered_vars(sf: SourceFile) -> set[str]:
    names: set[str] = set()
    for line in sf.code_lines:
        m = UNORDERED_NAME_RE.search(line)
        if m:
            names.add(m.group(1))
    return names


def _iterated_name(line: str) -> str | None:
    m = RANGE_FOR_RE.search(line)
    if not m:
        return None
    return m.group(1).split(".")[-1].split(">")[-1]


@rule("unordered-iter",
      "unordered container declaration or range-for over one: bucket order "
      "is nondeterministic; annotate the documented-safe ones")
def find_unordered_iter(sf: SourceFile):
    hits = []
    unordered_vars = _unordered_vars(sf)
    for i, line in enumerate(sf.code_lines):
        if UNORDERED_DECL_RE.search(line):
            hits.append((i, "unordered container: bucket order is "
                            "nondeterministic; document why iteration order "
                            "never feeds protocol decisions (or use a vector/"
                            "std::map) and annotate with omcast-lint: "
                            "allow(unordered-iter)"))
    for i, line in enumerate(sf.code_lines):
        name = _iterated_name(line)
        if name and name in unordered_vars:
            hits.append((i, f"range-for over unordered container '{name}': "
                            f"iteration order is nondeterministic"))
    return hits


@rule("unordered-sink",
      "range-for over an unordered container whose body feeds a trace/"
      "metrics/digest sink: the exported output inherits bucket order")
def find_unordered_sink(sf: SourceFile):
    hits = []
    unordered_vars = _unordered_vars(sf)
    if not unordered_vars:
        return hits
    for i, line in enumerate(sf.code_lines):
        name = _iterated_name(line)
        if not name or name not in unordered_vars:
            continue
        first, last = range_for_block(sf, i)
        body = " ".join(sf.code_lines[first:last + 1])
        if SINK_RE.search(body):
            hits.append((i, f"iteration over unordered container '{name}' "
                            f"feeds a trace/metrics/digest sink: the "
                            f"emitted order (and so the JSONL export, "
                            f"registry snapshot or replay digest) depends "
                            f"on hash-bucket order; copy into a sorted "
                            f"container first"))
    return hits


@rule("pointer-sort",
      "ordering by raw pointer value (std::less<T*>, pointer-keyed ordered "
      "containers, uintptr_t casts): ASLR breaks replay")
def find_pointer_sort(sf: SourceFile):
    hits = []
    for i, line in enumerate(sf.code_lines):
        for rx in POINTER_SORT_RES:
            if rx.search(line):
                hits.append((i, "ordering by raw pointer value: addresses "
                                "vary run to run under ASLR; key by a stable "
                                "id instead"))
                break
    return hits


@rule("uninit-member",
      "scalar data member without an initializer in a struct/class body: "
      "indeterminate reads are UB and nondeterministic")
def find_uninit_member(sf: SourceFile):
    hits = []
    # Lightweight brace tracking: flag declarations only directly inside a
    # struct/class body (depth == body depth), not locals in member
    # functions. Good enough for this codebase's Google-style layout.
    depth = 0
    struct_depths: list[int] = []
    for i, line in enumerate(sf.code_lines):
        opens_struct = bool(STRUCT_OPEN_RE.search(line))
        in_struct_body = bool(struct_depths) and depth == struct_depths[-1] + 1
        if (in_struct_body and not opens_struct
                and UNINIT_MEMBER_RE.match(line)
                and "typedef" not in line and "using" not in line):
            hits.append((i, "scalar member without initializer: reads of "
                            "indeterminate values are UB and nondeterministic;"
                            " add `= 0` / `{}`"))
        for c in line:
            if c == "{":
                if opens_struct:
                    struct_depths.append(depth)
                    opens_struct = False  # first brace belongs to the struct
                depth += 1
            elif c == "}":
                depth -= 1
                if struct_depths and depth == struct_depths[-1]:
                    struct_depths.pop()
    return hits


@rule("trace-wallclock",
      "wall-clock value inside a trace Emit(): trace payloads must be "
      "replay-deterministic (sim time and stable ids only)")
def find_trace_wallclock(sf: SourceFile):
    hits = []
    for i, line in enumerate(sf.code_lines):
        if not TRACE_EMIT_RE.search(line):
            continue
        # An Emit call's argument list often wraps; scan the call line plus
        # the next two continuation lines for a wall-clock token.
        window = " ".join(sf.code_lines[i:i + 3])
        if TRACE_WALLCLOCK_TOKEN_RE.search(window):
            hits.append((i, "wall-clock value in a trace emission: trace "
                            "payloads must be replay-deterministic (sim time "
                            "and stable ids only); host timing belongs in "
                            "obs::SimProfiler"))
    return hits


@rule("seed-narrowing",
      "narrowing cast on a seed/hash/digest derivation line: truncating a "
      "64-bit seed collapses distinct cells onto one RNG stream")
def find_seed_narrowing(sf: SourceFile):
    hits = []
    for i, line in enumerate(sf.code_lines):
        if NARROW_CAST_RE.search(line) and SEED_CTX_RE.search(line):
            hits.append((i, "narrowing conversion in a seed/hash derivation "
                            "path: keep the full 64 bits (std::uint64_t) "
                            "end to end -- hash-derived per-cell seeds rely "
                            "on every bit (util/hash.h)"))
    return hits
