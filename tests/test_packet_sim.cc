#include "stream/packet_sim.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "proto/min_depth.h"
#include "sim/simulator.h"
#include "stream/streaming.h"

namespace omcast::stream {
namespace {

using overlay::kRootId;
using overlay::NodeId;
using overlay::Session;
using overlay::SessionParams;

class PacketSimTest : public ::testing::Test {
 protected:
  PacketSimTest() {
    rnd::Rng topo_rng(1);
    topology_ = std::make_unique<net::Topology>(
        net::Topology::Generate(net::TinyTopologyParams(), topo_rng));
  }

  void MakeSession(double rejoin_delay = 15.0, std::uint64_t seed = 5) {
    SessionParams sp;
    sp.rejoin_delay_s = rejoin_delay;
    session_ = std::make_unique<Session>(
        sim_, *topology_, std::make_unique<proto::MinDepthProtocol>(), sp,
        seed);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<Session> session_;
};

TEST_F(PacketSimTest, StablePerfectTreeHasZeroStarving) {
  MakeSession();
  PacketLevelStream packets(*session_, PacketSimParams{}, 5);
  for (int i = 0; i < 20; ++i) session_->InjectMember(1.5, 1e9);
  sim_.RunUntil(1.0);
  packets.Start(60.0);
  sim_.RunUntil(120.0);
  packets.FinalizeAliveMembers();
  EXPECT_EQ(packets.packets_emitted(), 600);
  ASSERT_GT(packets.ratio_stat().count(), 10u);
  EXPECT_DOUBLE_EQ(packets.ratio_stat().mean(), 0.0);
  EXPECT_DOUBLE_EQ(packets.ratio_stat().max(), 0.0);
}

TEST_F(PacketSimTest, DeliveriesFlowThroughTheWholeTree) {
  MakeSession();
  PacketLevelStream packets(*session_, PacketSimParams{}, 5);
  for (int i = 0; i < 15; ++i) session_->InjectMember(2.0, 1e9);
  sim_.RunUntil(1.0);
  packets.Start(10.0);
  sim_.RunUntil(30.0);
  // ~100 packets x 15 members (plus propagation truncation at the end).
  EXPECT_GT(packets.deliveries(), 100 * 15 * 9 / 10);
}

TEST_F(PacketSimTest, ParentFailureCreatesBoundedHole) {
  MakeSession(/*rejoin_delay=*/15.0);
  PacketSimParams p;
  p.recovery_group_size = 1;
  PacketLevelStream packets(*session_, p, 7);
  // root <- hub <- victim; no other members, so no recovery source exists
  // and the 15 s hole goes entirely unrepaired.
  const NodeId hub = session_->InjectMember(5.0, 1e9);
  const NodeId victim = session_->InjectMember(0.5, 120.0);
  sim_.RunUntil(1.0);
  overlay::Tree& tree = session_->tree();
  if (tree.Parent(victim) != hub) {
    tree.Detach(victim);
    tree.Attach(hub, victim);
  }
  packets.Start(100.0);
  sim_.RunUntil(20.0);
  session_->DepartNow(hub);  // victim loses 15 s of stream
  sim_.RunUntil(200.0);
  packets.FinalizeAliveMembers();
  // Two qualifying members: the hub (departed, unharmed) and the victim.
  ASSERT_EQ(packets.ratio_stat().count(), 2u);
  // Victim: ~15 s hole out of ~115 s of viewing (tail not yet judged).
  const double ratio = packets.ratio_stat().max();
  EXPECT_GT(ratio, 0.10);
  EXPECT_LT(ratio, 0.20);
  EXPECT_DOUBLE_EQ(packets.ratio_stat().min(), 0.0);  // the hub
}

TEST_F(PacketSimTest, CooperativeRecoveryFillsTheHole) {
  MakeSession(15.0);
  PacketSimParams p;
  p.recovery_group_size = 4;
  PacketLevelStream packets(*session_, p, 11);
  for (int i = 0; i < 25; ++i) session_->InjectMember(1.0, 1e9);
  const NodeId hub = session_->InjectMember(5.0, 1e9);
  const NodeId victim = session_->InjectMember(0.5, 200.0);
  sim_.RunUntil(1.0);
  overlay::Tree& tree = session_->tree();
  if (tree.Parent(victim) != hub) {
    tree.Detach(victim);
    tree.Attach(hub, victim);
  }
  packets.Start(150.0);
  sim_.RunUntil(20.0);
  session_->DepartNow(hub);
  sim_.RunUntil(300.0);
  packets.FinalizeAliveMembers();
  EXPECT_GT(packets.repairs_scheduled(), 0);
  // With up to 4 stripes the hole shrinks well below the no-recovery ~13%.
  double victim_ratio = packets.ratio_stat().max();
  EXPECT_LT(victim_ratio, 0.10);
}

// The headline validation: the per-outage analytic model (StreamingLayer)
// and the per-packet simulator agree on the starving-time scale under
// identical churn and identical failures.
class PacketVsOutageModel : public ::testing::TestWithParam<int> {};

TEST_P(PacketVsOutageModel, ModelsAgreeWithinFactorTwo) {
  const int group_size = GetParam();
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  util::RunningStat packet_side, model_side;
  int healthy_runs = 0;
  for (std::uint64_t seed : {3u, 4u, 6u, 7u, 8u}) {
    sim::Simulator sim;
    overlay::SessionParams sp;
    // Depth without capacity crunch: the analytic model assumes a healthy
    // overlay where every rejoin succeeds within the 15 s budget.
    sp.root_bandwidth = 20.0;
    sp.rejoin_delay_s = 15.0;
    overlay::Session session(sim, topology,
                             std::make_unique<proto::MinDepthProtocol>(), sp,
                             seed);
    StreamParams analytic;
    analytic.recovery_group_size = group_size;
    StreamingLayer model(session, analytic, seed);
    model.SetMeasurementWindow(0.0, 1e9);
    PacketSimParams pp;
    pp.recovery_group_size = group_size;
    PacketLevelStream packets(session, pp, seed);
    session.Prepopulate(120);
    session.StartArrivals(120.0 / rnd::kMeanLifetimeSeconds);
    sim.RunUntil(10.0);
    packets.Start(2400.0);
    sim.RunUntil(2600.0);
    packets.FinalizeAliveMembers();
    // A tiny overlay can collapse into a capacity crunch (orphans hold
    // their subtrees' bandwidth through 15 s rejoin windows); the analytic
    // model explicitly does not cover that regime, and the packet
    // simulator is the tool that *exposes* it. Compare only healthy runs.
    if (session.failed_join_attempts() > 1000) continue;
    ++healthy_runs;
    packet_side.Merge(packets.ratio_stat());
    model_side.Merge(model.ratio_stat());
  }
  ASSERT_GE(healthy_runs, 3);
  ASSERT_GT(packet_side.count(), 50u);
  const double a = packet_side.mean();
  const double b = model_side.mean();
  // Same failures, same protocol rules: the scales must match. The packet
  // simulator sees real propagation, stripe queueing and reattach-boundary
  // holes that the analytic model idealizes away, so it carries a small
  // absolute floor (a fraction of a percent: ~0.2-0.3 s per outage) on top
  // of the modelled stall; a factor-5 band plus that floor still separates
  // cleanly from the order-of-magnitude effects the figures report.
  EXPECT_GT(a, 0.0);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(a, b * 5.0 + 0.004);
  EXPECT_GT(a, b / 5.0 - 0.004);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, PacketVsOutageModel,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace omcast::stream
