// Fig. 11: effect of ROST's switching interval (the paper sweeps 480, 960,
// 1200, 1800 s at 8000 members) on the four metrics. A smaller interval
// gives the overlay more adjustment opportunities: fewer disruptions and a
// smaller delay/stretch, at the cost of more reconnections -- which stay
// small (< ~0.2 per member) even at the smallest interval.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  flags.Define("intervals", "480,960,1200,1800", "switching intervals (s)");
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 11 -- effect of the ROST switching interval", env);

  const std::vector<int> intervals = flags.GetIntList("intervals");
  runner::GridSpec spec;
  spec.figure = "fig11_switch_interval";
  spec.title = "effect of the ROST switching interval";
  spec.row_header = "interval(s)";
  for (const int interval : intervals)
    spec.rows.push_back(std::to_string(interval));
  spec.cols = {"ROST"};
  spec.reps = env.reps;
  spec.headline_metric = "disruptions";
  spec.run = [&env, intervals](const runner::CellContext& cell) {
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.seed = cell.seed;
    config.rost.switching_interval_s = static_cast<double>(intervals[cell.row]);
    return bench::TreeCellResult(
        exp::RunTreeScenario(env.Topo(), exp::Algorithm::kRost, config));
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  bench::PrintMetricColumnsTable(
      spec, sink, /*col=*/0,
      {{"disruptions/node", "disruptions", 3},
       {"delay(ms)", "delay_ms", 3},
       {"stretch", "stretch", 3},
       {"reconnects/node", "reconnections", 3}},
      "ROST metrics vs switching interval (" +
          std::to_string(env.focus_size) + " members)");
  return 0;
}
