// Ablation (beyond the paper): what does the bandwidth-TIME product buy
// over its parts? Runs ROST's switching machinery with three criteria:
//   * btp        -- the paper's rule (BTP + bandwidth guard),
//   * bandwidth  -- switch whenever the child has strictly more bandwidth
//                   (a distributed approximation of BO),
//   * age        -- switch whenever the child is strictly older (a
//                   distributed approximation of TO / longest-first).
// BTP should combine the bandwidth criterion's shallow tree with the age
// criterion's stable ancestors.
#include <iostream>

#include "bench_common.h"

namespace {

struct Criterion {
  const char* label;
  omcast::core::SwitchCriterion criterion;
};

constexpr Criterion kCriteria[] = {
    {"btp (paper)", omcast::core::SwitchCriterion::kBtp},
    {"bandwidth-only", omcast::core::SwitchCriterion::kBandwidthOnly},
    {"age-only", omcast::core::SwitchCriterion::kAgeOnly},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Ablation -- ROST switching criterion", env);

  runner::GridSpec spec;
  spec.figure = "ablation_btp";
  spec.title = "ROST switching-criterion ablation";
  spec.row_header = "criterion";
  for (const Criterion& c : kCriteria) spec.rows.push_back(c.label);
  spec.cols = {"ROST"};
  spec.reps = env.reps;
  spec.headline_metric = "disruptions";
  spec.run = [&env](const runner::CellContext& cell) {
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.seed = cell.seed;
    config.rost.criterion = kCriteria[cell.row].criterion;
    return bench::TreeCellResult(
        exp::RunTreeScenario(env.Topo(), exp::Algorithm::kRost, config));
  };
  const runner::ResultsSink sink = bench::RunGridBench(env, spec);

  bench::PrintMetricColumnsTable(
      spec, sink, /*col=*/0,
      {{"disruptions/node", "disruptions", 3},
       {"delay(ms)", "delay_ms", 3},
       {"stretch", "stretch", 3},
       {"reconnects/node", "reconnections", 3}},
      "switching-criterion ablation (" + std::to_string(env.focus_size) +
          " members)");
  return 0;
}
