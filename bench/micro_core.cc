// Microbenchmarks (google-benchmark) for the building blocks on the hot
// paths of the simulation: the event queue, the topology delay oracle,
// partial-tree construction + MLC selection, the per-outage recovery model,
// and a full small churn scenario.
#include <benchmark/benchmark.h>

#include <functional>

#include "core/cer/mlc.h"
#include "core/cer/partial_tree.h"
#include "core/cer/recovery.h"
#include "exp/scenario.h"
#include "net/topology.h"
#include "rand/rng.h"
#include "sim/simulator.h"

namespace {

using namespace omcast;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    long count = 0;
    for (int i = 0; i < n; ++i)
      sim.ScheduleAt(static_cast<double>(i % 97), [&count] { ++count; });
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

// --- heap vs calendar at scale ---------------------------------------------
//
// The steady-state shape of the churn workload: a large standing set of
// pending timers (heartbeat periods, suspicion deadlines, departures) while
// the run loop continuously dispatches near-future events and schedules
// replacements. Each benchmark pre-populates `n` pending events, then
// measures one of the three queue operations the hot path is made of.
// Timer deadlines mix three scales (1s heartbeats, 4s suspicions, long-tail
// lifetimes) like the real session does.

double MixedDeadline(rnd::Rng& rng) {
  const double u = rng.Uniform(0.0, 1.0);
  if (u < 0.45) return rng.Uniform(0.0, 1.0);        // heartbeat period
  if (u < 0.90) return rng.Uniform(3.0, 5.0);        // suspicion deadline
  return rng.ExponentialMean(1809.0);                // member lifetime
}

sim::QueueKind KindArg(const benchmark::State& state) {
  return state.range(1) == 0 ? sim::QueueKind::kBinaryHeap
                             : sim::QueueKind::kCalendar;
}

void QueueScaleArgs(benchmark::internal::Benchmark* b) {
  for (long n : {10000L, 100000L, 1000000L, 10000000L})
    for (long kind : {0L, 1L}) b->Args({n, kind});
}

void BM_QueueScheduleAtScale(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator sim(KindArg(state));
  rnd::Rng rng(42);
  for (int i = 0; i < n; ++i)
    sim.ScheduleAt(MixedDeadline(rng), [] {}, "bench.standing");
  for (auto _ : state) {
    const sim::EventId id =
        sim.ScheduleAt(MixedDeadline(rng), [] {}, "bench.probe");
    benchmark::DoNotOptimize(id);
    state.PauseTiming();
    sim.Cancel(id);  // keep the pending set at n
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueScheduleAtScale)->Apply(QueueScaleArgs);

void BM_QueueCancelAtScale(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator sim(KindArg(state));
  rnd::Rng rng(42);
  for (int i = 0; i < n; ++i)
    sim.ScheduleAt(MixedDeadline(rng), [] {}, "bench.standing");
  for (auto _ : state) {
    state.PauseTiming();
    const sim::EventId id =
        sim.ScheduleAt(MixedDeadline(rng), [] {}, "bench.probe");
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.Cancel(id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueCancelAtScale)->Apply(QueueScaleArgs);

void BM_QueueDispatchAtScale(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Simulator sim(KindArg(state));
  rnd::Rng rng(42);
  // Self-renewing timers: each dispatch schedules its replacement, so the
  // pending set stays at n however long the benchmark iterates.
  std::function<void()> renew;
  long fired = 0;
  renew = [&] {
    ++fired;
    sim.ScheduleAfter(MixedDeadline(rng), renew, "bench.renew");
    sim.Stop();  // one dispatch per Run() call
  };
  for (int i = 0; i < n; ++i)
    sim.ScheduleAt(MixedDeadline(rng), renew, "bench.renew");
  for (auto _ : state) {
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueDispatchAtScale)->Apply(QueueScaleArgs);

// --- exact hierarchical vs landmark delay oracle ---------------------------
//
// Same topology size (~110k stub hosts, the 10^5-member sweep cell), both
// delay models, uniform random host pairs: the per-query cost that multiplies
// into every heartbeat delivery and every BTP candidate evaluation.

const net::Topology& OracleTopology(bool landmark) {
  auto make = [](net::DelayModel model) {
    net::TopologyParams p = net::ScaleTopologyParams(110000);
    p.delay_model = model;
    p.keep_flat_edges = false;
    rnd::Rng rng(7);
    return new net::Topology(net::Topology::Generate(p, rng));
  };
  static const net::Topology* hier = make(net::DelayModel::kHierarchical);
  static const net::Topology* land = make(net::DelayModel::kLandmark);
  return landmark ? *land : *hier;
}

void BM_DelayOracleAtScale(benchmark::State& state) {
  const net::Topology& t = OracleTopology(state.range(0) == 1);
  rnd::Rng pick(2);
  const auto hosts = static_cast<std::size_t>(t.num_stub_nodes());
  for (auto _ : state) {
    const auto a = static_cast<net::HostId>(pick.UniformIndex(hosts));
    const auto b = static_cast<net::HostId>(pick.UniformIndex(hosts));
    benchmark::DoNotOptimize(t.Delay(a, b));
  }
  state.SetLabel(state.range(0) == 1 ? "landmark" : "hierarchical");
}
BENCHMARK(BM_DelayOracleAtScale)->Arg(0)->Arg(1);

void BM_TopologyGenerate(benchmark::State& state) {
  for (auto _ : state) {
    rnd::Rng rng(1);
    const net::Topology t =
        net::Topology::Generate(net::PaperTopologyParams(), rng);
    benchmark::DoNotOptimize(t.num_stub_nodes());
  }
}
BENCHMARK(BM_TopologyGenerate)->Unit(benchmark::kMillisecond);

void BM_DelayOracle(benchmark::State& state) {
  rnd::Rng rng(1);
  const net::Topology t =
      net::Topology::Generate(net::PaperTopologyParams(), rng);
  rnd::Rng pick(2);
  for (auto _ : state) {
    const auto a = static_cast<net::HostId>(
        pick.UniformIndex(static_cast<std::size_t>(t.num_stub_nodes())));
    const auto b = static_cast<net::HostId>(
        pick.UniformIndex(static_cast<std::size_t>(t.num_stub_nodes())));
    benchmark::DoNotOptimize(t.Delay(a, b));
  }
}
BENCHMARK(BM_DelayOracle);

void BM_MlcSelection(benchmark::State& state) {
  // A realistic partial view: ~100 known members of a churned overlay.
  sim::Simulator sim;
  rnd::Rng topo_rng(1);
  const net::Topology topo =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  overlay::Session session(sim, topo,
                           exp::MakeProtocol(exp::Algorithm::kMinDepth,
                                             core::RostParams{}),
                           overlay::SessionParams{}, 3);
  session.Prepopulate(800);
  sim.RunUntil(600.0);
  rnd::Rng rng(7);
  for (auto _ : state) {
    const auto known = session.SampleCandidates(100, overlay::kNoNode);
    const core::PartialTree view = core::PartialTree::Build(session.tree(), known);
    benchmark::DoNotOptimize(
        core::FindMlcGroup(view, 3, overlay::kNoNode, rng));
  }
}
BENCHMARK(BM_MlcSelection);

void BM_SimulateOutage(benchmark::State& state) {
  core::OutageSpec spec;
  spec.chain = {{true, 0.3, 0.01}, {true, 0.4, 0.01}, {true, 0.2, 0.01}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimulateOutage(spec));
  }
}
BENCHMARK(BM_SimulateOutage);

void BM_ChurnScenario(benchmark::State& state) {
  rnd::Rng topo_rng(1);
  const net::Topology topo =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  for (auto _ : state) {
    exp::ScenarioConfig config;
    config.population = 500;
    config.warmup_s = 600.0;
    config.measure_s = 600.0;
    config.seed = 5;
    benchmark::DoNotOptimize(
        RunTreeScenario(topo, exp::Algorithm::kRost, config));
  }
}
BENCHMARK(BM_ChurnScenario)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
