file(REMOVE_RECURSE
  "CMakeFiles/omcast_sim.dir/simulator.cc.o"
  "CMakeFiles/omcast_sim.dir/simulator.cc.o.d"
  "libomcast_sim.a"
  "libomcast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omcast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
