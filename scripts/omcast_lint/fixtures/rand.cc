// Fixture [rand]: unseeded randomness outside src/rand must be flagged;
// the seeded rnd::Rng substrate is the only legal source.
#include <cstdlib>

namespace fixture {

int UnseededDraw() {
  std::srand(42);                    // expect(rand)
  return rand();                     // expect(rand)
}

double UnseededDrand() {
  return drand48();                  // expect(rand)
}

struct Rng {  // stand-in for rnd::Rng
  unsigned long long state = 1;
  unsigned long long Next() { return state = state * 6364136223846793005ull + 1ull; }
};

// Negative: seeded substrate use is clean.
unsigned long long SeededDraw(Rng& rng) { return rng.Next(); }

// Negative: a documented, reviewed seam stays silent via the escape hatch.
int LegacyEntropy() {
  return rand();  // omcast-lint: allow(rand)
}

}  // namespace fixture
