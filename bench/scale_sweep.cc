// Scale sweep: the million-member hot-path trajectory.
//
// Drives a full churn workload -- equilibrium-pre-populated Session,
// Poisson arrivals, heartbeat failure detection (the hottest timer load the
// stack produces) -- at steady-state sizes 10^5..10^6 and records the
// simulator hot-path numbers from obs::SimProfiler: dispatched events,
// run-loop wall time (queue operations included), events per wall second,
// peak RSS, and calendar event-pool occupancy.
//
// Two columns per size:
//   * "heap+apsp"          -- the seed hot path, as far as it is
//                             runtime-selectable: QueueKind::kBinaryHeap,
//                             the exact hierarchical delay oracle with
//                             per-domain APSP tables and the flat validation
//                             edge list, and the seed's O(population)
//                             join-candidate sampling copy + O(members)
//                             per-join dedup bitmap. Run only up to
//                             --baseline-max members (default 10^5: at 10^6
//                             the seed cost model pays an 8 MB population
//                             copy per join -- terabytes of memcpy over a
//                             churn run -- so raise the cap deliberately,
//                             as the committed trajectory does).
//   * "calendar+landmark"  -- QueueKind::kCalendar plus
//                             DelayModel::kLandmark: the configuration that
//                             fits 10^6 members in container memory.
//
// Both columns replay the identical workload (same per-cell seed, and the
// two delay models generate bit-identical topologies), so events/sec ratios
// compare implementations, not workloads.
//
//   ./bench/scale_sweep [--sizes=100000,1000000] [--duration=60]
//                       [--baseline-max=100000] [--out=results]
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/topology.h"
#include "obs/profile.h"
#include "overlay/heartbeat.h"
#include "overlay/session.h"
#include "proto/min_depth.h"
#include "rand/distributions.h"
#include "runner/results.h"
#include "runner/runner.h"
#include "runner/topology_cache.h"
#include "sim/simulator.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace omcast;

struct SweepOptions {
  std::vector<int> sizes;
  double duration_s = 60.0;
  int baseline_max = 100000;
  std::uint64_t seed = 1;
  std::string out_dir;
  bool resume = false;
  bool progress = true;
};

// Stub hosts provisioned per steady-state size: 5% churn headroom so
// Poisson arrivals never hit host exhaustion mid-measurement.
int HostsFor(int size) { return size + size / 20 + 100; }

runner::CellResult RunCell(const SweepOptions& opt,
                           const runner::CellContext& cell) {
  const int size = opt.sizes[cell.row];
  const bool optimized = cell.col == 1;
  runner::CellResult out;
  if (!optimized && size > opt.baseline_max) {
    // Above the cap the seed cost model is deliberately not run (its
    // per-join population copies make the cell take tens of minutes); the
    // cell records itself as skipped rather than lying with zeros.
    out.metrics["skipped"] = 1.0;
    return out;
  }

  net::TopologyParams tp = net::ScaleTopologyParams(HostsFor(size));
  if (!optimized) {
    tp.delay_model = net::DelayModel::kHierarchical;
    tp.keep_flat_edges = true;
  }
  // Topology seed depends on size but NOT on column: the landmark model
  // consumes the same rng sequence as the exact one, so both columns run
  // the identical network.
  const net::Topology& topo =
      runner::SharedTopology(tp, opt.seed ^ (0x5ca1eULL + cell.row));

  sim::Simulator sim(optimized ? sim::QueueKind::kCalendar
                               : sim::QueueKind::kBinaryHeap);
  obs::SimProfiler prof;
  sim.SetProfiler(&prof);

  overlay::SessionParams sp;
  sp.external_failure_detection = true;
  // The baseline column reproduces the seed hot path wherever it is
  // runtime-selectable: binary-heap queue, exact APSP oracle, and the
  // O(population) by-value candidate-sampling copy. Identical variate
  // sequence either way, so both columns still replay the same workload.
  sp.seed_baseline_sampling = !optimized;
  overlay::Session session(sim, topo,
                           std::make_unique<proto::MinDepthProtocol>(), sp,
                           cell.seed);
  overlay::HeartbeatService heartbeat(session, overlay::HeartbeatParams{},
                                      cell.seed ^ 0xbea75ULL);
  session.Prepopulate(size);
  session.StartArrivals(size / rnd::kMeanLifetimeSeconds);
  sim.RunUntil(opt.duration_s);

  out.metrics["events"] = static_cast<double>(sim.executed_count());
  out.metrics["events_per_sec"] = prof.events_per_sec();
  out.metrics["loop_wall_s"] = prof.loop_us() * 1e-6;
  // peak_rss_mb is the *process* high-water mark (monotone across cells in
  // one grid run -- a late cell inherits earlier cells' peak); rss_delta_mb
  // is the growth attributable to this cell alone.
  out.metrics["peak_rss_mb"] =
      static_cast<double>(prof.peak_rss_bytes()) / 1e6;
  out.metrics["rss_delta_mb"] =
      static_cast<double>(prof.rss_delta_bytes()) / 1e6;
  out.metrics["pool_live_max"] = static_cast<double>(prof.pool_live_max());
  out.metrics["pool_capacity_max"] =
      static_cast<double>(prof.pool_capacity_max());
  out.metrics["pending_end"] = static_cast<double>(sim.pending_count());
  out.metrics["delay_table_mb"] =
      static_cast<double>(topo.DelayTableBytes()) / 1e6;
  out.metrics["population_end"] = session.alive_count();
  out.metrics["heartbeats"] = static_cast<double>(heartbeat.heartbeats_sent());
  out.metrics["detections"] = static_cast<double>(heartbeat.detections());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  flags.Define("sizes", "100000,1000000", "steady-state member counts")
      .Define("duration", "60", "simulated churn seconds per cell")
      .Define("baseline-max", "100000",
              "largest size the heap+apsp baseline column still runs at")
      .Define("seed", "1", "base RNG seed")
      .Define("out", "", "directory for scale_sweep.json (empty: none)")
      .Define("resume", "false", "reuse matching cells from --out JSON")
      .Define("progress", "true", "per-cell progress lines on stderr")
      .Define("log-level", "warn", "debug | info | warn | error");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyLogLevelFlag(flags.GetString("log-level"));

  SweepOptions opt;
  opt.sizes = flags.GetIntList("sizes");
  opt.duration_s = flags.GetDouble("duration");
  opt.baseline_max = flags.GetInt("baseline-max");
  opt.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  opt.out_dir = flags.GetString("out");
  opt.resume = flags.GetBool("resume");
  opt.progress = flags.GetBool("progress");
  if (opt.sizes.empty()) {
    std::cerr << "--sizes must name at least one size\n";
    return 1;
  }

  std::cout << "=== scale_sweep -- simulator hot path at 10^5..10^6 members"
            << " ===\nduration: " << opt.duration_s
            << "s simulated churn  seed: " << opt.seed
            << "  baseline column up to " << opt.baseline_max
            << " members\n\n";

  runner::GridSpec spec;
  spec.figure = "scale_sweep";
  spec.title = "simulator hot-path throughput and memory vs overlay size";
  spec.row_header = "members";
  for (const int size : opt.sizes) spec.rows.push_back(std::to_string(size));
  spec.cols = {"heap+apsp", "calendar+landmark"};
  spec.reps = 1;
  spec.headline_metric = "events_per_sec";
  spec.run = [&opt](const runner::CellContext& cell) {
    return RunCell(opt, cell);
  };

  runner::RunnerOptions options;
  options.threads = 1;  // cells are memory-heavy; never overlap them
  options.base_seed = opt.seed;
  options.progress = opt.progress;
  const std::filesystem::path out_path =
      opt.out_dir.empty()
          ? std::filesystem::path{}
          : std::filesystem::path(opt.out_dir) / (spec.figure + ".json");
  runner::Json resume_doc;
  if (opt.resume && !opt.out_dir.empty()) {
    std::ifstream in(out_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string error;
      resume_doc = runner::Json::Parse(buf.str(), &error);
      if (resume_doc.is_object()) options.resume = &resume_doc;
    }
  }

  runner::GridRunSummary summary = runner::RunGrid(spec, options);
  runner::RunInfo info;
  info.scale = "scale_sweep";
  info.git_sha = bench::GitSha();
  info.base_seed = opt.seed;
  info.warmup_s = 0.0;
  info.measure_s = opt.duration_s;
  const runner::ResultsSink sink(spec, info, std::move(summary));

  const std::vector<bench::MetricColumn> columns = {
      {"events", "events", 0},
      {"events/sec", "events_per_sec", 0},
      {"loop wall (s)", "loop_wall_s", 2},
      {"proc peak RSS (MB)", "peak_rss_mb", 1},
      {"cell RSS delta (MB)", "rss_delta_mb", 1},
      {"pool live max", "pool_live_max", 0},
      {"delay tables (MB)", "delay_table_mb", 2},
      {"population", "population_end", 0},
  };
  bench::PrintMetricColumnsTable(spec, sink, 0, columns,
                                 "baseline: binary heap + exact APSP oracle");
  bench::PrintMetricColumnsTable(
      spec, sink, 1, columns,
      "optimized: calendar queue + landmark oracle");

  util::Table speedup({"members", "baseline ev/s", "optimized ev/s", "x"});
  for (std::size_t row = 0; row < spec.rows.size(); ++row) {
    const double base = sink.Stat(row, 0, "events_per_sec").mean();
    const double fast = sink.Stat(row, 1, "events_per_sec").mean();
    speedup.AddRow({spec.rows[row], util::FormatDouble(base, 0),
                    util::FormatDouble(fast, 0),
                    base > 0.0 ? util::FormatDouble(fast / base, 2) : "-"});
  }
  speedup.Print(std::cout, "hot-path throughput (events per wall second)");

  if (!opt.out_dir.empty()) {
    std::filesystem::create_directories(opt.out_dir);
    if (!sink.WriteJson(out_path.string())) {
      std::cerr << "[scale_sweep] FAILED to write " << out_path << "\n";
      return 1;
    }
    std::cerr << "[scale_sweep] wrote " << out_path << "\n";
  }
  return 0;
}
