file(REMOVE_RECURSE
  "CMakeFiles/omcast_core.dir/cer/eln.cc.o"
  "CMakeFiles/omcast_core.dir/cer/eln.cc.o.d"
  "CMakeFiles/omcast_core.dir/cer/group.cc.o"
  "CMakeFiles/omcast_core.dir/cer/group.cc.o.d"
  "CMakeFiles/omcast_core.dir/cer/mlc.cc.o"
  "CMakeFiles/omcast_core.dir/cer/mlc.cc.o.d"
  "CMakeFiles/omcast_core.dir/cer/partial_tree.cc.o"
  "CMakeFiles/omcast_core.dir/cer/partial_tree.cc.o.d"
  "CMakeFiles/omcast_core.dir/cer/recovery.cc.o"
  "CMakeFiles/omcast_core.dir/cer/recovery.cc.o.d"
  "CMakeFiles/omcast_core.dir/rost/referee.cc.o"
  "CMakeFiles/omcast_core.dir/rost/referee.cc.o.d"
  "CMakeFiles/omcast_core.dir/rost/rost.cc.o"
  "CMakeFiles/omcast_core.dir/rost/rost.cc.o.d"
  "libomcast_core.a"
  "libomcast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omcast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
