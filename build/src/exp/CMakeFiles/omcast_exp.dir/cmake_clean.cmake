file(REMOVE_RECURSE
  "CMakeFiles/omcast_exp.dir/scenario.cc.o"
  "CMakeFiles/omcast_exp.dir/scenario.cc.o.d"
  "libomcast_exp.a"
  "libomcast_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omcast_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
