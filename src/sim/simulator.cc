#include "sim/simulator.h"

#include <utility>

#include "util/check.h"

namespace omcast::sim {

EventId Simulator::ScheduleAt(Time t, Callback cb) {
  util::Check(t >= now_, "cannot schedule an event in the past");
  util::Check(static_cast<bool>(cb), "event callback must be callable");
  const std::uint64_t id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(cb)});
  pending_.insert(id);
  return EventId{id};
}

EventId Simulator::ScheduleAfter(Time delay, Callback cb) {
  util::Check(delay >= 0.0, "event delay must be non-negative");
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::Cancel(EventId id) { return pending_.erase(id.value) > 0; }

bool Simulator::IsPending(EventId id) const {
  return pending_.contains(id.value);
}

bool Simulator::RunOne() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the callback is moved out via
    // const_cast, which is safe because the element is popped immediately.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (pending_.erase(ev.id) == 0) continue;  // cancelled
    now_ = ev.time;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && RunOne()) {
  }
}

void Simulator::RunUntil(Time t) {
  util::Check(t >= now_, "cannot run backwards in time");
  stopped_ = false;
  while (!stopped_) {
    // Drop cancelled heads so the next-time peek is accurate.
    while (!queue_.empty() && !pending_.contains(queue_.top().id))
      queue_.pop();
    if (queue_.empty() || queue_.top().time > t) break;
    RunOne();
  }
  if (!stopped_) now_ = t;
}

}  // namespace omcast::sim
