// Statistics helpers shared by the metrics collectors and the experiment
// harness: streaming mean/variance, percentiles, CDFs and confidence
// intervals.  All of these operate on plain doubles so that callers can feed
// them counts, delays (ms), ratios, etc.
#pragma once

#include <cstddef>
#include <vector>

namespace omcast::util {

// Welford streaming accumulator: numerically stable mean and variance
// without storing samples.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  // Half-width of the 95% confidence interval of the mean (normal approx.,
  // which is what the paper's error bars in Fig. 14 use in effect).
  double ci95_half_width() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// One (x, y) point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;    // sample value
  double fraction = 0.0; // P(X <= value), in [0, 1]
};

// Builds the empirical CDF of `samples` evaluated at each distinct sample
// value. `samples` is taken by value because it must be sorted.
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples);

// Evaluates the empirical CDF at chosen abscissae (e.g. the 1,2,4,...,128
// grid of the paper's Fig. 5): returns P(X <= at[i]) for each i.
std::vector<double> CdfAt(std::vector<double> samples,
                          const std::vector<double>& at);

// p-th percentile (p in [0,100]) by linear interpolation; `samples` by value
// because it must be sorted. Empty input yields 0.
double Percentile(std::vector<double> samples, double p);

// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& samples);

}  // namespace omcast::util
