file(REMOVE_RECURSE
  "CMakeFiles/test_cer.dir/test_cer.cc.o"
  "CMakeFiles/test_cer.dir/test_cer.cc.o.d"
  "test_cer"
  "test_cer.pdb"
  "test_cer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
