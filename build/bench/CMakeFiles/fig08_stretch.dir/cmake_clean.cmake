file(REMOVE_RECURSE
  "CMakeFiles/fig08_stretch.dir/fig08_stretch.cc.o"
  "CMakeFiles/fig08_stretch.dir/fig08_stretch.cc.o.d"
  "fig08_stretch"
  "fig08_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
