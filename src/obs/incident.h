// Incident flight recorder: stitches the live trace stream into
// per-disruption recovery lifecycles.
//
// A disruption *incident* opens when a member involuntarily loses its
// upstream feed (kOrphaned: parent death, eviction/false-suspicion detach,
// fragment dissolve) or re-enters after downtime (kReconnectStart), and
// then walks the phases the paper's transient claims are about:
//
//   failure -> suspicion (kHeartbeatMiss) -> detection (kSuspicion)
//           -> reattached (kJoin/kRejoin/kReconnectAttached/
//              kCliqueLocalRecovery/kCliqueBackboneReattach)
//           -> stream-recovered (kPlaybackRegime back to nominal, when the
//              member's playback left nominal cadence at all)
//
// with per-phase latencies recorded only between observed endpoints (an
// oracle-detection run has no suspicion events; a run without frame
// playback has no regime events -- those phases simply stay empty).
// Orthogonal lifecycles tracked alongside: ROST switch handshakes
// (kSwitchAttempt -> first kLockGrant -> kSwitchCommit/kSwitchAbort) and
// clique delegate successions (kLeave of the old delegate ->
// kCliqueDelegatePromoted).
//
// Robustness contract (pinned by test_incidents.cc on synthetic traces): a
// re-orphaning while an incident is open supersedes it and opens a fresh
// one; a departure or abandoned re-entry closes it terminally; terminal
// reconnect events with no matching open incident are tallied as orphan
// events, never crash; Finalize() closes the stragglers as open-at-end.
//
// Determinism: an IncidentLog consumes only replay-deterministic trace
// content and keeps exact latency lists (sorted copies for percentiles),
// so FlatStats() is byte-identical across equal-seed runs under any thread
// count, queue kind, or delay model. Cell-confined and unsynchronized,
// like every obs collector.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"

namespace omcast::obs {

class IncidentLog : public TraceSink {
 public:
  enum class Cause : int {
    kParentDeath = 0,  // kOrphaned detail 0
    kEviction = 1,     // kOrphaned detail 1 (eviction / false suspicion)
    kDissolve = 2,     // kOrphaned detail 2 (fragment dissolve)
    kReconnect = 3,    // kReconnectStart
  };

  enum class Close : int {
    kRecovered = 0,   // reattached with nominal playback (immediately, or
                      // after regaining cadence)
    kAbandoned = 1,   // bounded-retry re-entry gave up
    kDeparted = 2,    // the member left while the incident was open
    kSuperseded = 3,  // re-orphaned before this incident resolved
    kOpenAtEnd = 4,   // still unresolved at Finalize()
  };

  struct Incident {
    std::int64_t subject = -1;
    Cause cause = Cause::kParentDeath;
    double t_open = 0.0;
    double t_suspect = -1.0;   // first heartbeat miss after open
    double t_detect = -1.0;    // real-death suspicion
    double t_reattach = -1.0;  // first reattach edge
    double t_close = -1.0;
    Close close = Close::kOpenAtEnd;
  };

  // Feed: either register as a sink on the run's Tracer (live), or replay
  // Tracer::Events() through it after the fact -- both see the same stream.
  void OnEvent(const TraceEvent& ev) override;

  // Closes every still-open incident as kOpenAtEnd at time `t` and drops
  // unfinished switch handshakes. Call once, after the run.
  void Finalize(double t);

  // All closed incidents, in close order (Finalize closes the remainder in
  // subject order).
  const std::vector<Incident>& incidents() const { return closed_; }

  // Flat deterministic name -> value stats: lifecycle counts (always
  // present, zero included) plus, for each phase with observations,
  // `incident.phase.<name>.count/.mean_s/.p50_s/.p99_s/.max_s` with exact
  // (sorted, nearest-rank) percentiles. This is the per-cell `incidents`
  // block of results schema v3.
  std::map<std::string, double> FlatStats() const;

  // Exports the same lifecycle counts as registry counters and each phase's
  // latencies into fixed-bound registry histograms ("incident.phase.*_s"),
  // so cross-cell aggregation can MergeFrom them.
  void ExportTo(Registry& reg) const;

 private:
  struct OpenSwitch {
    double t_attempt = 0.0;
    double t_lock = -1.0;  // first lease granted to the initiator
  };

  void OpenIncident(std::int64_t subject, Cause cause, double t);
  void CloseIncident(std::int64_t subject, Close close, double t);
  void Reattached(std::int64_t subject, double t);
  int RegimeOf(std::int64_t subject) const;

  std::map<std::int64_t, Incident> open_;
  std::vector<Incident> closed_;
  std::map<std::int64_t, OpenSwitch> open_switches_;
  std::map<std::int64_t, int> regime_;     // last kPlaybackRegime detail
  std::map<std::int64_t, double> left_at_; // last kLeave time per node

  // Lifecycle tallies.
  long opened_ = 0;
  long cause_counts_[4] = {0, 0, 0, 0};
  long reattached_ = 0;
  long close_counts_[5] = {0, 0, 0, 0, 0};
  long orphan_events_ = 0;  // terminal reconnect events with nothing open
  long switch_attempts_ = 0;
  long switch_commits_ = 0;
  long switch_aborts_ = 0;
  long promotions_ = 0;

  // Exact per-phase latency lists (seconds).
  std::vector<double> suspect_s_;
  std::vector<double> detect_s_;
  std::vector<double> reattach_s_;
  std::vector<double> recover_s_;
  std::vector<double> total_s_;
  std::vector<double> switch_lock_s_;
  std::vector<double> switch_commit_s_;
  std::vector<double> promotion_s_;
};

}  // namespace omcast::obs
