#include "stream/packet_sim.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace omcast::stream {

using overlay::kRootId;
using overlay::Member;
using overlay::NodeId;
using overlay::Session;

PacketLevelStream::PacketLevelStream(Session& session, PacketSimParams params,
                                     std::uint64_t seed)
    : session_(session), params_(params), rng_(seed) {
  util::Check(params_.packet_rate > 0.0, "packet rate must be positive");
  util::Check(session_.params().rejoin_delay_s >= params_.detect_s,
              "rejoin_delay_s must cover the detection time");
  session_.hooks().AddOnDeparture([this](NodeId failed) { OnDeparture(failed); });
  session_.hooks().AddOnMemberDeparted([this](const Member& m) {
    FinalizeMember(m, session_.simulator().now());
  });
}

double PacketLevelStream::ResidualFraction(NodeId id) {
  if (residual_fraction_.size() <= static_cast<std::size_t>(id))
    residual_fraction_.resize(static_cast<std::size_t>(id) + 1, -1.0);
  double& f = residual_fraction_[static_cast<std::size_t>(id)];
  if (f < 0.0)
    f = rng_.Uniform(params_.residual_lo_pkts, params_.residual_hi_pkts) /
        params_.packet_rate;
  return f;
}

void PacketLevelStream::Start(double duration_s) {
  util::Check(!started_, "packet stream already started");
  started_ = true;
  const double now = session_.simulator().now();
  stream_start_ = now;
  stream_end_ = now + duration_s;
  last_seq_ = static_cast<std::int64_t>(duration_s * params_.packet_rate) - 1;
  session_.simulator().ScheduleAt(now, [this] { Emit(0); });
}

void PacketLevelStream::Emit(std::int64_t seq) {
  ++emitted_;
  // The source holds the packet; push it to the root's current children.
  for (NodeId c : session_.tree().Get(kRootId).children) {
    const double hop = session_.DelayMs(kRootId, c) / 1000.0;
    session_.simulator().ScheduleAfter(
        hop, [this, c, seq] { Deliver(c, seq, session_.simulator().now()); });
  }
  if (seq < last_seq_)
    session_.simulator().ScheduleAfter(1.0 / params_.packet_rate,
                                       [this, seq] { Emit(seq + 1); });
}

PacketLevelStream::Reception& PacketLevelStream::ReceptionFor(NodeId member,
                                                              double now) {
  auto it = rx_.find(member);
  if (it == rx_.end()) {
    Reception r;
    const Member& m = session_.tree().Get(member);
    const double start = std::max(stream_start_, m.join_time);
    r.first_seq = static_cast<std::int64_t>(
        std::ceil((start - stream_start_) * params_.packet_rate - 1e-9));
    r.started_at = now;
    it = rx_.emplace(member, std::move(r)).first;
  }
  return it->second;
}

void PacketLevelStream::Deliver(NodeId member, std::int64_t seq, double now) {
  const Member& m = session_.tree().Get(member);
  if (!m.alive) return;
  Reception& rx = ReceptionFor(member, now);
  if (seq >= rx.first_seq) {
    const auto idx = static_cast<std::size_t>(seq - rx.first_seq);
    if (rx.arrival.size() <= idx) rx.arrival.resize(idx + 1, -1.0);
    if (rx.arrival[idx] >= 0.0) return;  // duplicate
    rx.arrival[idx] = now;
  }
  ++deliveries_;
  // ELN origination: a jump past the next expected sequence means the
  // member itself detected losses; it notifies its children so they wait
  // for upstream repair instead of rejoining (Section 4.2).
  if (seq >= rx.first_seq) {
    rx.tracker.OnData(seq - rx.first_seq);
    if (rx.max_seen >= rx.first_seq - 1 && seq > rx.max_seen + 1) {
      std::vector<std::int64_t> holes;
      for (std::int64_t h = std::max(rx.max_seen + 1, rx.first_seq); h < seq; ++h) {
        const auto idx = static_cast<std::size_t>(h - rx.first_seq);
        if (idx >= rx.arrival.size() || rx.arrival[idx] < 0.0) holes.push_back(h);
      }
      NotifyChildren(member, holes);
    }
    rx.max_seen = std::max(rx.max_seen, seq);
  }
  // Forward to current children, one hop each.
  for (NodeId c : m.children) {
    const double hop = session_.DelayMs(member, c) / 1000.0;
    session_.simulator().ScheduleAfter(
        hop, [this, c, seq] { Deliver(c, seq, session_.simulator().now()); });
  }
}

void PacketLevelStream::NotifyChildren(NodeId member,
                                       const std::vector<std::int64_t>& seqs) {
  if (seqs.empty()) return;
  const Member& m = session_.tree().Get(member);
  for (NodeId c : m.children) {
    const double hop = session_.DelayMs(member, c) / 1000.0;
    for (std::int64_t seq : seqs) {
      ++eln_sent_;
      session_.simulator().ScheduleAfter(
          hop, [this, c, seq] { DeliverEln(c, seq); });
    }
  }
}

void PacketLevelStream::DeliverEln(NodeId member, std::int64_t seq) {
  const Member& m = session_.tree().Get(member);
  if (!m.alive) return;
  Reception& rx = ReceptionFor(member, session_.simulator().now());
  if (seq < rx.first_seq) return;
  rx.tracker.OnEln(seq - rx.first_seq);
  // Propagate only the notifications this member had not seen before.
  std::vector<std::int64_t> fresh;
  for (const std::int64_t rel : rx.tracker.TakeForwardNotifications())
    fresh.push_back(rel + rx.first_seq);
  NotifyChildren(member, fresh);
}

core::ElnTracker::Status PacketLevelStream::ElnStatusOf(NodeId member) const {
  const auto it = rx_.find(member);
  if (it == rx_.end()) return core::ElnTracker::Status::kHealthy;
  return it->second.tracker.status();
}

void PacketLevelStream::OnDeparture(NodeId failed) {
  if (!started_) return;
  overlay::Tree& tree = session_.tree();
  const double now = session_.simulator().now();
  const double rejoin_at = now + session_.params().rejoin_delay_s;

  for (const NodeId orphan : tree.Get(failed).children) {
    // The hole this orphan must repair: packets emitted while it is
    // detached.
    const auto hole_begin = static_cast<std::int64_t>(std::ceil(
        (now - stream_start_) * params_.packet_rate - 1e-9));
    const auto hole_end =
        std::min(last_seq_, static_cast<std::int64_t>(
                                (rejoin_at - stream_start_) * params_.packet_rate));
    if (hole_begin > hole_end) continue;

    std::vector<NodeId> group = core::SelectRecoveryGroup(
        session_, orphan, params_.recovery_group_size, params_.selection);

    // Build the usable stripe chain exactly as the repair protocol does.
    struct Stripe {
      double rate = 0.0;       // fraction of full stream rate
      double start = 0.0;      // when this node starts serving
      double next_free = 0.0;  // its serving queue
      double lo = 0.0, hi = 0.0;  // (n mod 100) in [lo, hi)
    };
    std::vector<Stripe> stripes;
    double latency = 0.0;
    double covered = 0.0;
    NodeId prev = orphan;
    for (NodeId g : group) {
      latency += session_.DelayMs(prev, g) / 1000.0;
      prev = g;
      const Member& gm = tree.Get(g);
      const bool usable = gm.alive && gm.in_tree &&
                          !tree.IsInSubtreeOf(g, failed) && tree.IsRooted(g);
      if (!usable) continue;
      const double rate = ResidualFraction(g);
      if (rate <= 0.0) continue;
      Stripe s;
      s.rate = rate;
      s.start = now + params_.detect_s + latency;
      s.next_free = s.start;
      s.lo = 100.0 * std::min(covered, 1.0);
      covered += rate;
      s.hi = 100.0 * std::min(covered, 1.0);
      stripes.push_back(s);
      if (params_.mode == core::RecoveryMode::kSingleSource) break;
      if (covered >= 1.0) break;
    }
    if (stripes.empty()) continue;
    if (params_.mode == core::RecoveryMode::kSingleSource) {
      stripes.front().lo = 0.0;
      stripes.front().hi = 100.0;
    } else if (covered < 1.0) {
      // Chain exhausted below full rate: the last stripe takes the rest of
      // the sequence space at its own (insufficient) rate.
      stripes.back().hi = 100.0;
    }

    // Schedule the repaired packets. Each stripe serves its share of the
    // hole in sequence order at its residual rate; packets that cannot make
    // their playback deadline are not sent ("meaningless").
    for (std::int64_t seq = hole_begin; seq <= hole_end; ++seq) {
      const double mod = static_cast<double>(seq % 100);
      Stripe* stripe = nullptr;
      for (Stripe& s : stripes)
        if (mod >= s.lo && mod < s.hi) {
          stripe = &s;
          break;
        }
      if (stripe == nullptr) continue;  // uncovered share of the rate
      const double emit_time =
          stream_start_ + static_cast<double>(seq) / params_.packet_rate;
      const double deadline = emit_time + params_.buffer_s;
      const double begin = std::max(stripe->next_free, std::max(emit_time, stripe->start));
      const double done = begin + 1.0 / (stripe->rate * params_.packet_rate);
      if (done > deadline) continue;  // expired; skip without serving
      stripe->next_free = done;
      ++repairs_;
      session_.simulator().ScheduleAt(done, [this, orphan, seq] {
        Deliver(orphan, seq, session_.simulator().now());
      });
    }
  }
}

void PacketLevelStream::FinalizeMember(const Member& m, double end_time) {
  const auto it = rx_.find(m.id);
  if (m.join_time < 0.0 || finalized_.contains(m.id)) {
    if (it != rx_.end()) rx_.erase(it);
    return;  // pre-populated member, or already accounted
  }
  finalized_.insert(m.id);
  // Expected packets: from the member's first sequence to the last emitted
  // before it left (or the stream ended). Packets whose playback deadline
  // has not passed yet are not judged (they may still arrive in time).
  const double horizon = std::min(end_time, stream_end_);
  const auto first = static_cast<std::int64_t>(std::ceil(
      (std::max(m.join_time, stream_start_) - stream_start_) *
          params_.packet_rate -
      1e-9));
  const auto deadline_cap = static_cast<std::int64_t>(
      (end_time - params_.buffer_s - stream_start_) * params_.packet_rate);
  const auto last = std::min(
      {last_seq_,
       static_cast<std::int64_t>((horizon - stream_start_) * params_.packet_rate) -
           1,
       deadline_cap});
  if (last < first) {
    if (it != rx_.end()) rx_.erase(it);
    return;
  }
  std::int64_t missed = 0;
  for (std::int64_t seq = first; seq <= last; ++seq) {
    const double deadline = stream_start_ +
                            static_cast<double>(seq) / params_.packet_rate +
                            params_.buffer_s;
    double arrival = -1.0;
    if (it != rx_.end() && seq >= it->second.first_seq) {
      const auto idx = static_cast<std::size_t>(seq - it->second.first_seq);
      if (idx < it->second.arrival.size()) arrival = it->second.arrival[idx];
    }
    if (arrival < 0.0 || arrival > deadline) ++missed;
  }
  const double view_time =
      static_cast<double>(last - first + 1) / params_.packet_rate;
  ratio_stat_.Add(static_cast<double>(missed) / params_.packet_rate / view_time);
  if (it != rx_.end()) rx_.erase(it);
}

void PacketLevelStream::FinalizeAliveMembers() {
  const double now = session_.simulator().now();
  for (NodeId id : session_.alive_members())
    FinalizeMember(session_.tree().Get(id), now);
}

}  // namespace omcast::stream
