# Empty compiler generated dependencies file for omcast_exp.
# This may be replaced when dependencies are built.
