file(REMOVE_RECURSE
  "CMakeFiles/fig14_rost_cer.dir/fig14_rost_cer.cc.o"
  "CMakeFiles/fig14_rost_cer.dir/fig14_rost_cer.cc.o.d"
  "fig14_rost_cer"
  "fig14_rost_cer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rost_cer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
