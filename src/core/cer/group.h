// Recovery-group selection strategies (paper Section 4.1 vs the baselines
// of Section 6): MLC (Algorithm 1 on the member's partial tree view) or
// uniform-random from the member's known set. Either way the group is
// ordered by network distance from the requester, which is the order the
// repair chain is walked in.
#pragma once

#include <vector>

#include "overlay/session.h"

namespace omcast::core {

enum class GroupSelection { kMlc, kRandom };

// Picks up to `k` recovery members for `requester` from its gossip view
// (session.params().candidate_sample_size known members), ordered nearest
// first. The requester's own fragment is excluded -- its descendants share
// all of its losses.
std::vector<overlay::NodeId> SelectRecoveryGroup(overlay::Session& session,
                                                 overlay::NodeId requester,
                                                 int k, GroupSelection selection);

}  // namespace omcast::core
