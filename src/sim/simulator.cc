#include "sim/simulator.h"

#include <utility>

#include "obs/profile.h"
#include "util/check.h"

namespace omcast::sim {

EventId Simulator::ScheduleAt(Time t, Callback cb, const char* tag) {
  util::Check(t >= now_, "cannot schedule an event in the past");
  util::Check(static_cast<bool>(cb), "event callback must be callable");
  OMCAST_DCHECK(t == t, "event time must not be NaN");
  const std::uint64_t id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, tag, std::move(cb)});
  pending_.insert(id);
  return EventId{id};
}

EventId Simulator::ScheduleAfter(Time delay, Callback cb, const char* tag) {
  util::Check(delay >= 0.0, "event delay must be non-negative");
  return ScheduleAt(now_ + delay, std::move(cb), tag);
}

bool Simulator::Cancel(EventId id) {
  // Cancelling a handle the simulator never issued is a bookkeeping bug in
  // the caller (a stale copy from another simulator, or uninitialized state);
  // kInvalidEventId is the documented "nothing scheduled" value and is fine.
  OMCAST_DCHECK(id.value < next_id_, "Cancel: event id was never issued");
  return pending_.erase(id.value) > 0;
}

bool Simulator::IsPending(EventId id) const {
  OMCAST_DCHECK(id.value < next_id_, "IsPending: event id was never issued");
  return pending_.contains(id.value);
}

bool Simulator::RunOne() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the callback is moved out via
    // const_cast, which is safe because the element is popped immediately.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (pending_.erase(ev.id) == 0) continue;  // cancelled
    // The queue must hand events over in non-decreasing time, FIFO at equal
    // times: the bit-reproducibility of every run rests on this ordering.
    OMCAST_DCHECK(ev.time >= now_, "event queue must be time-monotonic");
    OMCAST_DCHECK(
        ev.time > now_ || last_seq_at_now_ == std::numeric_limits<std::uint64_t>::max() ||
            ev.seq > last_seq_at_now_,
        "events at equal times must fire in scheduling order");
    last_seq_at_now_ = ev.seq;
    now_ = ev.time;
    ++executed_;
    if (trace_) trace_(ev.time, ev.id);
    if (profiler_ != nullptr) {
      profiler_->BeginEvent(ev.tag, pending_.size());
      ev.cb();
      profiler_->EndEvent();
    } else {
      ev.cb();
    }
    return true;
  }
  return false;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && RunOne()) {
  }
}

void Simulator::RunUntil(Time t) {
  util::Check(t >= now_, "cannot run backwards in time");
  stopped_ = false;
  while (!stopped_) {
    // Drop cancelled heads so the next-time peek is accurate.
    while (!queue_.empty() && !pending_.contains(queue_.top().id))
      queue_.pop();
    if (queue_.empty() || queue_.top().time > t) break;
    RunOne();
  }
  if (!stopped_) now_ = t;
}

}  // namespace omcast::sim
