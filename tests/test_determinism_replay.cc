// Seed-replay determinism test: runs a mid-size churn + gossip + per-packet
// streaming scenario twice with identical seeds and asserts the rolling hash
// of the *entire event trace* (every executed simulator event, plus the
// final tree shape and stream accounting) is bit-identical. Any
// nondeterminism hazard -- unordered-container iteration order feeding a
// decision, an unseeded RNG, pointer-valued tie-breaks -- shows up here as a
// digest mismatch long before it silently skews a figure.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include <string>

#include "core/rost/rost.h"
#include "exp/chaos.h"
#include "exp/scenario.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "overlay/gossip.h"
#include "overlay/heartbeat.h"
#include "overlay/session.h"
#include "runner/runner.h"
#include "runner/topology_cache.h"
#include "sim/fault_plane.h"
#include "sim/simulator.h"
#include "stream/packet_sim.h"
#include "util/hash.h"

namespace omcast {
namespace {

using overlay::NodeId;

// One full scenario run; everything observable is folded into the digest.
// `queue` selects the pending-event implementation: the calendar queue and
// the seed's binary heap must be indistinguishable at digest granularity.
std::uint64_t RunScenarioDigest(std::uint64_t seed,
                                sim::QueueKind queue =
                                    sim::QueueKind::kCalendar) {
  sim::Simulator sim(queue);
  rnd::Rng topo_rng(1);  // fixed topology across seeds; churn varies
  const net::Topology topology =
      net::Topology::Generate(net::TinyTopologyParams(), topo_rng);

  overlay::SessionParams sp;
  sp.rejoin_delay_s = 15.0;  // paper's detection + rejoin outage
  core::RostParams rp;
  rp.switching_interval_s = 60.0;
  overlay::Session session(sim, topology,
                           std::make_unique<core::RostProtocol>(rp), sp, seed);
  overlay::GossipService gossip(session, overlay::GossipParams{}, seed + 1);
  session.SetMembershipOracle(&gossip);

  util::RollingHash hash;
  sim.SetTraceObserver([&hash](sim::Time t, std::uint64_t id) {
    hash.MixDouble(t);
    hash.MixU64(id);
  });

  session.Prepopulate(80);  // tiny topology holds 96 stub hosts
  session.StartArrivals(80.0 / 1809.0);

  stream::PacketSimParams pp;
  pp.packet_rate = 5.0;
  stream::PacketLevelStream stream(session, pp, seed + 2);
  stream.Start(120.0);

  sim.RunUntil(300.0);
  session.StopArrivals();
  stream.FinalizeAliveMembers();

  // Fold in the end state: tree shape, stream accounting, RNG-driven
  // population counts. A trace collision would still have to match all of
  // these to slip through.
  hash.MixU64(sim.executed_count());
  hash.MixU64(static_cast<std::uint64_t>(session.alive_count()));
  hash.MixU64(static_cast<std::uint64_t>(session.total_members_created()));
  const overlay::Tree& tree = session.tree();
  for (NodeId id = 0; id < static_cast<NodeId>(tree.size()); ++id) {
    hash.MixI64(static_cast<std::int64_t>(tree.Parent(id)));
    hash.MixI64(tree.Layer(id));
    hash.MixU64(tree.Alive(id) ? 1 : 0);
  }
  hash.MixI64(stream.packets_emitted());
  hash.MixI64(stream.deliveries());
  hash.MixI64(stream.repairs_scheduled());
  hash.MixDouble(stream.ratio_stat().mean());
  return hash.digest();
}

// Chaos-flavored variant: the same churn scenario with every control path
// routed through a lossy FaultPlane, heartbeat failure detection replacing
// the oracle, and a correlated stub-domain kill mid-stream. The entire
// fault schedule -- which messages drop, duplicate, jitter -- must replay
// bit-identically under the same seed.
std::uint64_t RunChaosDigest(std::uint64_t seed,
                             sim::QueueKind queue = sim::QueueKind::kCalendar) {
  sim::Simulator sim(queue);
  rnd::Rng topo_rng(1);
  const net::Topology topology =
      net::Topology::Generate(net::TinyTopologyParams(), topo_rng);

  overlay::SessionParams sp;
  sp.rejoin_delay_s = 15.0;
  sp.external_failure_detection = true;
  sp.root_bandwidth = 5.0;  // force depth so failures orphan someone
  core::RostParams rp;
  rp.switching_interval_s = 60.0;
  auto protocol = std::make_unique<core::RostProtocol>(rp);
  core::RostProtocol* rost = protocol.get();
  overlay::Session session(sim, topology, std::move(protocol), sp, seed);
  // The protocol trace rides on the same determinism contract as the event
  // schedule: fold its digest in so a wall-clock or iteration-order leak
  // into a trace payload fails here.
  obs::Tracer tracer(1u << 18);
  session.SetTracer(&tracer);

  sim::FaultPlaneParams fp;
  fp.loss_rate = 0.05;
  fp.dup_prob = 0.02;
  fp.jitter_s = 0.05;
  sim::FaultPlane plane(sim, fp, seed + 10);
  rost->SetFaultPlane(&plane);
  overlay::HeartbeatService heartbeat(session, overlay::HeartbeatParams{},
                                      seed + 11, &plane);

  util::RollingHash hash;
  sim.SetTraceObserver([&hash](sim::Time t, std::uint64_t id) {
    hash.MixDouble(t);
    hash.MixU64(id);
  });

  session.Prepopulate(60);
  session.StartArrivals(60.0 / 1809.0);

  stream::PacketSimParams pp;
  pp.packet_rate = 5.0;
  stream::PacketLevelStream stream(session, pp, seed + 2);
  stream.SetFaultPlane(&plane);
  stream.Start(120.0);

  // Correlated kill at t=30: every member hosted in stub domain 1 dies.
  sim.ScheduleAt(30.0, [&] {
    std::vector<NodeId> victims;
    for (NodeId id : session.alive_members())
      if (topology.DomainOf(session.tree().Get(id).host) == 1)
        victims.push_back(id);
    for (NodeId id : victims)
      if (session.tree().Alive(id)) session.DepartNow(id);
  });

  sim.RunUntil(300.0);
  session.StopArrivals();
  stream.FinalizeAliveMembers();

  hash.MixU64(sim.executed_count());
  hash.MixU64(static_cast<std::uint64_t>(session.alive_count()));
  hash.MixI64(plane.messages_sent());
  hash.MixI64(plane.messages_dropped());
  hash.MixI64(plane.messages_duplicated());
  hash.MixI64(heartbeat.detections());
  hash.MixI64(heartbeat.false_suspicions());
  hash.MixI64(rost->leases_granted());
  hash.MixI64(rost->leases_expired());
  hash.MixI64(rost->lock_timeouts());
  const overlay::Tree& tree = session.tree();
  for (NodeId id = 0; id < static_cast<NodeId>(tree.size()); ++id) {
    hash.MixI64(static_cast<std::int64_t>(tree.Parent(id)));
    hash.MixU64(tree.Alive(id) ? 1 : 0);
  }
  hash.MixI64(stream.deliveries());
  hash.MixI64(stream.repairs_scheduled());
  hash.MixDouble(stream.ratio_stat().mean());
  hash.MixU64(tracer.Digest());
  return hash.digest();
}

TEST(SeedReplayDeterminism, IdenticalSeedsProduceIdenticalTraces) {
  const std::uint64_t first = RunScenarioDigest(42);
  const std::uint64_t second = RunScenarioDigest(42);
  EXPECT_EQ(first, second)
      << "two runs with the same seed diverged: a nondeterminism hazard "
         "(hash-order iteration, unseeded RNG, pointer tie-break) is live";
}

TEST(SeedReplayDeterminism, DifferentSeedsProduceDifferentTraces) {
  // Sanity check that the digest actually sees the trace: distinct seeds
  // must yield distinct histories (collision odds are ~2^-64).
  EXPECT_NE(RunScenarioDigest(42), RunScenarioDigest(43));
}

TEST(SeedReplayDeterminism, ChaosFaultScheduleReplaysBitIdentically) {
  const std::uint64_t first = RunChaosDigest(17);
  const std::uint64_t second = RunChaosDigest(17);
  EXPECT_EQ(first, second)
      << "the fault schedule (drops/duplicates/jitter) or the heartbeat "
         "path diverged between identically-seeded runs";
}

TEST(SeedReplayDeterminism, ChaosDigestSeesTheSeed) {
  EXPECT_NE(RunChaosDigest(17), RunChaosDigest(18));
}

// ---------------------------------------------------------------------------
// Queue-implementation equivalence: the calendar queue + SoA tree must be
// *observationally identical* to the seed's binary heap -- same (time, seq)
// dispatch order, same sequential EventIds, same downstream RNG draws --
// so swapping the queue can never change a paper figure. The digest covers
// the entire event trace plus end state, so any divergence in any event
// fails loudly.
// ---------------------------------------------------------------------------

TEST(QueueEquivalence, ScenarioDigestsMatchAcrossQueueKinds) {
  for (const std::uint64_t seed : {42ull, 7ull, 1234ull}) {
    EXPECT_EQ(RunScenarioDigest(seed, sim::QueueKind::kCalendar),
              RunScenarioDigest(seed, sim::QueueKind::kBinaryHeap))
        << "seed " << seed
        << ": calendar queue dispatched a different event history than the "
           "seed binary heap";
  }
}

TEST(QueueEquivalence, ChaosDigestsMatchAcrossQueueKinds) {
  // The chaos run leans hard on cancellation (heartbeat re-arms cancel and
  // reschedule suspicion timers constantly) and on equal-time pileups from
  // the fault plane's jittered redeliveries -- the two places a queue
  // implementation could break ordering.
  for (const std::uint64_t seed : {17ull, 99ull}) {
    EXPECT_EQ(RunChaosDigest(seed, sim::QueueKind::kCalendar),
              RunChaosDigest(seed, sim::QueueKind::kBinaryHeap))
        << "seed " << seed
        << ": fault-plane/heartbeat history diverged between queue kinds";
  }
}

// ---------------------------------------------------------------------------
// Full chaos-scenario replay under the scaled hot path: the calendar queue
// plus the landmark delay oracle, i.e. the exact configuration the
// million-member trajectory runs. Each of the harness's injection shapes --
// correlated domain kill, flash crowd, mid-repair double kill -- must
// replay bit-identically (same registry snapshot, same QoE accounting, same
// protocol trace) and must not depend on the queue implementation.
// ---------------------------------------------------------------------------

std::uint64_t RunChaosHarnessDigest(int scenario, std::uint64_t seed,
                                    sim::QueueKind queue) {
  rnd::Rng topo_rng(1);
  net::TopologyParams tp = net::TinyTopologyParams();
  tp.delay_model = net::DelayModel::kLandmark;
  const net::Topology topology = net::Topology::Generate(tp, topo_rng);

  exp::ChaosConfig c;
  c.population = 60;
  c.warmup_s = 300.0;
  c.stream_s = 60.0;
  c.drain_s = 60.0;
  c.seed = seed;
  c.queue_kind = queue;
  c.fault.loss_rate = 0.02;
  c.fault.dup_prob = 0.01;
  c.fault.jitter_s = 0.02;
  c.session.root_bandwidth = 5.0;
  c.rost.switching_interval_s = 60.0;
  c.packet.frame_playback = true;
  switch (scenario) {
    case 0:  // correlated stub-domain kill
      c.domain_kill_at_s = 10.0;
      c.domain_kill_index = 1;
      break;
    case 1:  // flash crowd of simultaneous departures
      c.flash_at_s = 10.0;
      c.flash_departures = 5;
      break;
    default:  // mid-repair double kill (parent, then the repair server)
      c.mid_repair_kill_at_s = 20.0;
      break;
  }
  obs::Tracer tracer(1u << 18);
  c.tracer = &tracer;
  const exp::ChaosResult r = exp::RunChaosScenario(topology, c);

  util::RollingHash hash;
  for (const auto& [name, value] : r.registry) {
    hash.MixBytes(name);
    hash.MixDouble(value);
  }
  hash.MixDouble(r.avg_starving_ratio);
  hash.MixDouble(r.degraded_time_fraction);
  hash.MixDouble(r.mean_recovery_to_cadence_s);
  hash.MixI64(r.decode_stalls);
  hash.MixI64(r.regime_transitions);
  hash.MixI64(r.dependency_resyncs);
  hash.MixI64(r.reentries_scheduled);
  hash.MixI64(r.reentries_attached);
  hash.MixI64(r.reentries_abandoned);
  hash.MixI64(r.unrooted_members);
  hash.MixI64(r.final_population);
  hash.MixU64(tracer.Digest());
  return hash.digest();
}

TEST(ChaosHarnessReplay, ScenariosReplayBitIdenticallyUnderCalendarLandmark) {
  for (int scenario : {0, 1, 2}) {
    EXPECT_EQ(
        RunChaosHarnessDigest(scenario, 21, sim::QueueKind::kCalendar),
        RunChaosHarnessDigest(scenario, 21, sim::QueueKind::kCalendar))
        << "chaos scenario " << scenario
        << " diverged between identically-seeded runs";
  }
}

TEST(ChaosHarnessReplay, ScenarioDigestsSeeTheSeed) {
  EXPECT_NE(RunChaosHarnessDigest(0, 21, sim::QueueKind::kCalendar),
            RunChaosHarnessDigest(0, 22, sim::QueueKind::kCalendar));
}

TEST(ChaosHarnessReplay, ScenarioDigestsMatchAcrossQueueKinds) {
  for (int scenario : {0, 1, 2}) {
    EXPECT_EQ(
        RunChaosHarnessDigest(scenario, 21, sim::QueueKind::kCalendar),
        RunChaosHarnessDigest(scenario, 21, sim::QueueKind::kBinaryHeap))
        << "chaos scenario " << scenario
        << " dispatched differently under the two queue kinds";
  }
}

// ---------------------------------------------------------------------------
// Clique-protocol replay: the clustered overlay's event history -- cluster
// formation order, election timers, succession timeouts, advisory traffic
// over the fault plane -- must replay bit-identically under the same seed,
// under both delay models, and under both queue kinds. The flash-crowd
// shape exercises every recovery path (local reattach, succession,
// dissolution, overflow/preempt admission) in one run.
// ---------------------------------------------------------------------------

std::uint64_t RunCliqueChaosDigest(std::uint64_t seed, sim::QueueKind queue,
                                   net::DelayModel delay) {
  rnd::Rng topo_rng(1);
  net::TopologyParams tp = net::TinyTopologyParams();
  tp.delay_model = delay;
  const net::Topology topology = net::Topology::Generate(tp, topo_rng);

  exp::ChaosConfig c;
  c.algorithm = exp::Algorithm::kClique;
  c.population = 60;
  c.warmup_s = 300.0;
  c.stream_s = 60.0;
  c.drain_s = 60.0;
  c.seed = seed;
  c.queue_kind = queue;
  c.fault.loss_rate = 0.02;
  c.fault.dup_prob = 0.01;
  c.fault.jitter_s = 0.02;
  c.session.root_bandwidth = 16.0;  // feasible post-flash rebuild
  c.packet.frame_playback = true;
  c.flash_at_s = 10.0;
  c.flash_departures = 12;
  obs::Tracer tracer(1u << 18);
  c.tracer = &tracer;
  const exp::ChaosResult r = exp::RunChaosScenario(topology, c);

  util::RollingHash hash;
  for (const auto& [name, value] : r.registry) {
    hash.MixBytes(name);
    hash.MixDouble(value);
  }
  hash.MixDouble(r.avg_starving_ratio);
  hash.MixDouble(r.degraded_time_fraction);
  hash.MixI64(r.decode_stalls);
  hash.MixI64(r.reentries_attached);
  hash.MixI64(r.unrooted_members);
  hash.MixI64(r.final_population);
  hash.MixU64(tracer.Digest());
  return hash.digest();
}

TEST(CliqueReplay, ChaosReplaysBitIdenticallyUnderBothDelayModels) {
  for (const net::DelayModel delay :
       {net::DelayModel::kHierarchical, net::DelayModel::kLandmark}) {
    EXPECT_EQ(
        RunCliqueChaosDigest(21, sim::QueueKind::kCalendar, delay),
        RunCliqueChaosDigest(21, sim::QueueKind::kCalendar, delay))
        << "clique chaos run diverged between identically-seeded runs "
           "(delay model " << static_cast<int>(delay) << ")";
  }
}

TEST(CliqueReplay, DigestsMatchAcrossQueueKinds) {
  for (const net::DelayModel delay :
       {net::DelayModel::kHierarchical, net::DelayModel::kLandmark}) {
    EXPECT_EQ(
        RunCliqueChaosDigest(21, sim::QueueKind::kCalendar, delay),
        RunCliqueChaosDigest(21, sim::QueueKind::kBinaryHeap, delay))
        << "clique election/succession timers dispatched differently "
           "under the two queue kinds";
  }
}

TEST(CliqueReplay, DigestSeesTheSeed) {
  EXPECT_NE(RunCliqueChaosDigest(21, sim::QueueKind::kCalendar,
                                 net::DelayModel::kLandmark),
            RunCliqueChaosDigest(22, sim::QueueKind::kCalendar,
                                 net::DelayModel::kLandmark));
}

// ---------------------------------------------------------------------------
// Grid-level determinism: the experiment runner must produce bit-identical
// per-cell results whether the grid executes serially or across a stolen-work
// thread pool. Each cell runs a real (small) tree scenario against the shared
// read-only topology; the digest covers every metric and sample of every
// cell, so a data race on the topology, a scheduling-dependent seed, or an
// output-slot mixup all fail this test.
// ---------------------------------------------------------------------------

runner::GridRunSummary RunScenarioGrid(
    int threads, sim::QueueKind queue = sim::QueueKind::kCalendar) {
  runner::GridSpec spec;
  spec.figure = "determinism_probe";
  spec.title = "grid determinism probe";
  spec.row_header = "members";
  spec.rows = {"40", "60"};
  spec.cols = {"min-depth", "ROST"};
  spec.reps = 2;
  spec.headline_metric = "disruptions";
  const net::Topology& topology =
      runner::SharedTopology(net::TinyTopologyParams(), 1);
  spec.run = [&topology, queue](const runner::CellContext& cell) {
    exp::ScenarioConfig config;
    config.population = cell.row == 0 ? 40 : 60;
    config.warmup_s = 120.0;
    config.measure_s = 300.0;
    config.seed = cell.seed;
    config.queue_kind = queue;
    const exp::Algorithm algorithm =
        cell.col == 0 ? exp::Algorithm::kMinDepth : exp::Algorithm::kRost;
    const exp::TreeScenarioResult r =
        exp::RunTreeScenario(topology, algorithm, config);
    runner::CellResult out;
    out.metrics["disruptions"] = r.avg_disruptions;
    out.metrics["delay_ms"] = r.avg_delay_ms;
    out.metrics["stretch"] = r.avg_stretch;
    out.metrics["population"] = r.avg_population;
    out.samples["disruptions"] = r.disruption_samples;
    return out;
  };
  runner::RunnerOptions options;
  options.threads = threads;
  options.base_seed = 1;
  return runner::RunGrid(spec, options);
}

TEST(SeedReplayDeterminism, SerialAndParallelGridsAreBitIdentical) {
  const runner::GridRunSummary serial = RunScenarioGrid(/*threads=*/1);
  const runner::GridRunSummary parallel = RunScenarioGrid(/*threads=*/4);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(runner::DigestOutcomes(serial.cells),
            runner::DigestOutcomes(parallel.cells))
      << "per-cell results depend on thread count: a cell is sharing "
         "mutable state (RNG, topology, collector) across the grid";
  // Localize a failure if the digests ever diverge.
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].result.metrics,
              parallel.cells[i].result.metrics)
        << "cell " << i << " (" << serial.cells[i].ctx.row_label << "/"
        << serial.cells[i].ctx.col_label << " rep "
        << serial.cells[i].ctx.rep << ") diverged";
  }
}

TEST(QueueEquivalence, SerialAndFourThreadGridsMatchAcrossQueueKinds) {
  // The full 2x2: {calendar, heap} x {serial, 4 workers}. All four grids
  // must digest identically -- queue choice and thread count are both
  // implementation details the results must not see.
  const runner::GridRunSummary cal_serial =
      RunScenarioGrid(/*threads=*/1, sim::QueueKind::kCalendar);
  const std::uint64_t reference = runner::DigestOutcomes(cal_serial.cells);
  const auto expect_same = [&](int threads, sim::QueueKind queue,
                               const char* label) {
    const runner::GridRunSummary summary = RunScenarioGrid(threads, queue);
    EXPECT_EQ(runner::DigestOutcomes(summary.cells), reference)
        << label << " diverged from the serial calendar-queue grid";
  };
  expect_same(1, sim::QueueKind::kBinaryHeap, "serial binary-heap grid");
  expect_same(4, sim::QueueKind::kCalendar, "4-thread calendar grid");
  expect_same(4, sim::QueueKind::kBinaryHeap, "4-thread binary-heap grid");
}

TEST(SeedReplayDeterminism, GridCellsUseDistinctDerivedSeeds) {
  const runner::GridRunSummary summary = RunScenarioGrid(/*threads=*/2);
  std::set<std::uint64_t> seeds;
  for (const runner::CellOutcome& cell : summary.cells)
    seeds.insert(cell.ctx.seed);
  EXPECT_EQ(seeds.size(), summary.cells.size())
      << "two grid cells derived the same seed";
}

// Per-cell protocol traces must also be independent of the thread count:
// each cell attaches a private Tracer and the exported JSONL text -- not
// just a digest of it -- must come out byte-identical whether the grid ran
// serially or on four workers.
std::vector<std::string> RunTracedGridJsonl(int threads) {
  runner::GridSpec spec;
  spec.figure = "trace_determinism_probe";
  spec.title = "per-cell trace determinism probe";
  spec.row_header = "members";
  spec.rows = {"40", "60"};
  spec.cols = {"ROST"};
  spec.reps = 2;
  const net::Topology& topology =
      runner::SharedTopology(net::TinyTopologyParams(), 1);
  std::vector<std::string> jsonl(spec.cell_count());
  spec.run = [&topology, &jsonl,
              reps = spec.reps](const runner::CellContext& cell) {
    obs::Tracer tracer(1u << 18);
    exp::ScenarioConfig config;
    config.population = cell.row == 0 ? 40 : 60;
    config.warmup_s = 120.0;
    config.measure_s = 180.0;
    config.seed = cell.seed;
    config.tracer = &tracer;
    const exp::TreeScenarioResult r =
        exp::RunTreeScenario(topology, exp::Algorithm::kRost, config);
    // Cells write distinct slots, so no lock is needed across the pool.
    jsonl[cell.row * static_cast<std::size_t>(reps) +
          static_cast<std::size_t>(cell.rep)] = tracer.ToJsonl();
    runner::CellResult out;
    out.metrics["disruptions"] = r.avg_disruptions;
    out.metrics["trace_events"] = static_cast<double>(tracer.emitted());
    return out;
  };
  runner::RunnerOptions options;
  options.threads = threads;
  options.base_seed = 1;
  (void)runner::RunGrid(spec, options);
  return jsonl;
}

TEST(SeedReplayDeterminism, SerialAndParallelTraceJsonlAreByteIdentical) {
  const std::vector<std::string> serial = RunTracedGridJsonl(/*threads=*/1);
  const std::vector<std::string> parallel = RunTracedGridJsonl(/*threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].empty()) << "cell " << i << " emitted no trace";
    EXPECT_EQ(serial[i], parallel[i])
        << "cell " << i << " exported different JSONL under 4 threads: a "
           "trace payload depends on scheduling or wall-clock";
  }
}

// The degraded-regime scenario grid (the shape bench/degraded_grid runs)
// must also be thread-count independent: every QoE metric, registry entry,
// recovery time-series and incident stat of every cell digests identically
// serially and on four workers (DigestOutcomes mixes the schema-v3
// timeseries and incidents blocks, so a scheduling leak into either fails
// the digest comparison, and the per-cell loops localize it).
runner::GridRunSummary RunDegradedGrid(int threads) {
  runner::GridSpec spec;
  spec.figure = "degraded_determinism_probe";
  spec.title = "degraded-regime grid determinism probe";
  spec.row_header = "scenario";
  spec.rows = {"join_storm", "rejoin_load"};
  spec.cols = {"loss=5%"};
  spec.reps = 2;
  spec.headline_metric = "degraded_time_fraction";
  const net::Topology& topology =
      runner::SharedTopology(net::TinyTopologyParams(), 1);
  spec.run = [&topology](const runner::CellContext& cell) {
    exp::ChaosConfig c;
    c.population = 50;
    c.warmup_s = 200.0;
    c.stream_s = 60.0;
    c.drain_s = 60.0;
    c.seed = cell.seed;
    c.fault.loss_rate = 0.05;
    c.session.root_bandwidth = 5.0;
    c.rost.switching_interval_s = 60.0;
    c.packet.frame_playback = true;
    if (cell.row == 0) {
      c.join_storm_at_s = 10.0;
      c.join_storm_count = 20;
    } else {
      c.reconnect_storm_at_s = 10.0;
      c.reconnect_storm_fraction = 0.2;
    }
    obs::Registry reg;
    c.registry = &reg;
    c.timeseries_window_s = 5.0;
    c.incident_analysis = true;
    const exp::ChaosResult r = exp::RunChaosScenario(topology, c);
    runner::CellResult out;
    out.metrics["degraded_time_fraction"] = r.degraded_time_fraction;
    out.metrics["decode_stalls"] = static_cast<double>(r.decode_stalls);
    out.metrics["dependency_resyncs"] =
        static_cast<double>(r.dependency_resyncs);
    out.metrics["reentries_pending"] = static_cast<double>(r.reentries_pending);
    out.registry = r.registry;
    out.incidents = r.incidents;
    for (const auto& [name, ts] : reg.series()) {
      runner::CellResult::SeriesSnapshot snap;
      snap.kind = static_cast<int>(ts.kind());
      snap.window_s = ts.window_s();
      for (const obs::TimeSeries::Point& p : ts.Points())
        snap.points.emplace_back(p.t, p.value);
      out.timeseries[name] = std::move(snap);
    }
    return out;
  };
  runner::RunnerOptions options;
  options.threads = threads;
  options.base_seed = 1;
  return runner::RunGrid(spec, options);
}

TEST(SeedReplayDeterminism, DegradedGridIsBitIdenticalSerialVsFourThreads) {
  const runner::GridRunSummary serial = RunDegradedGrid(/*threads=*/1);
  const runner::GridRunSummary parallel = RunDegradedGrid(/*threads=*/4);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(runner::DigestOutcomes(serial.cells),
            runner::DigestOutcomes(parallel.cells))
      << "degraded-regime cells depend on thread count";
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].result.metrics, parallel.cells[i].result.metrics)
        << "cell " << i << " diverged";
    EXPECT_EQ(serial.cells[i].result.registry,
              parallel.cells[i].result.registry)
        << "cell " << i << " registry diverged";
    // The flight-recorder blocks must be populated (the probe enables both)
    // and thread-count independent point for point.
    EXPECT_FALSE(serial.cells[i].result.timeseries.empty())
        << "cell " << i << " recorded no recovery curves";
    EXPECT_FALSE(serial.cells[i].result.incidents.empty())
        << "cell " << i << " recorded no incident stats";
    EXPECT_EQ(serial.cells[i].result.incidents,
              parallel.cells[i].result.incidents)
        << "cell " << i << " incident stats diverged";
    const auto& serial_ts = serial.cells[i].result.timeseries;
    const auto& parallel_ts = parallel.cells[i].result.timeseries;
    ASSERT_EQ(serial_ts.size(), parallel_ts.size()) << "cell " << i;
    for (const auto& [name, snap] : serial_ts) {
      ASSERT_TRUE(parallel_ts.contains(name))
          << "cell " << i << " lost series " << name << " under 4 threads";
      EXPECT_EQ(snap.points, parallel_ts.at(name).points)
          << "cell " << i << " series " << name << " diverged";
    }
  }
}

// The bake-off's clique side must be thread-count independent too: a churn
// row (RunTreeScenario) and a flash row (RunChaosScenario) both under the
// clustered protocol, serially and on four workers.
runner::GridRunSummary RunCliqueGrid(int threads) {
  runner::GridSpec spec;
  spec.figure = "clique_determinism_probe";
  spec.title = "clique grid determinism probe";
  spec.row_header = "scenario";
  spec.rows = {"churn", "flash"};
  spec.cols = {"clique"};
  spec.reps = 2;
  spec.headline_metric = "disruptions";
  const net::Topology& topology =
      runner::SharedTopology(net::TinyTopologyParams(), 1);
  spec.run = [&topology](const runner::CellContext& cell) {
    runner::CellResult out;
    if (cell.row == 0) {
      exp::ScenarioConfig config;
      config.population = 50;
      config.warmup_s = 120.0;
      config.measure_s = 300.0;
      config.seed = cell.seed;
      const exp::TreeScenarioResult r =
          exp::RunTreeScenario(topology, exp::Algorithm::kClique, config);
      out.metrics["disruptions"] = r.avg_disruptions;
      out.metrics["delay_ms"] = r.avg_delay_ms;
      out.metrics["stretch"] = r.avg_stretch;
      return out;
    }
    exp::ChaosConfig c;
    c.algorithm = exp::Algorithm::kClique;
    c.population = 50;
    c.warmup_s = 200.0;
    c.stream_s = 60.0;
    c.drain_s = 60.0;
    c.seed = cell.seed;
    c.fault.loss_rate = 0.02;
    c.session.root_bandwidth = 16.0;
    c.packet.frame_playback = true;
    c.flash_at_s = 10.0;
    c.flash_departures = 10;
    const exp::ChaosResult r = exp::RunChaosScenario(topology, c);
    out.metrics["disruptions"] = r.avg_starving_ratio;
    out.metrics["unrooted_members"] = static_cast<double>(r.unrooted_members);
    out.registry = r.registry;
    return out;
  };
  runner::RunnerOptions options;
  options.threads = threads;
  options.base_seed = 1;
  return runner::RunGrid(spec, options);
}

TEST(SeedReplayDeterminism, CliqueGridIsBitIdenticalSerialVsFourThreads) {
  const runner::GridRunSummary serial = RunCliqueGrid(/*threads=*/1);
  const runner::GridRunSummary parallel = RunCliqueGrid(/*threads=*/4);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(runner::DigestOutcomes(serial.cells),
            runner::DigestOutcomes(parallel.cells))
      << "clique cells depend on thread count";
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].result.metrics, parallel.cells[i].result.metrics)
        << "cell " << i << " diverged";
    EXPECT_EQ(serial.cells[i].result.registry,
              parallel.cells[i].result.registry)
        << "cell " << i << " registry diverged";
  }
}

TEST(SeedReplayDeterminism, TraceObserverSeesMonotonicTime) {
  sim::Simulator sim;
  sim::Time last = 0.0;
  long observed = 0;
  sim.SetTraceObserver([&](sim::Time t, std::uint64_t) {
    EXPECT_GE(t, last);
    last = t;
    ++observed;
  });
  for (int i = 0; i < 50; ++i)
    sim.ScheduleAt(static_cast<double>((i * 7) % 10), [] {});
  sim.Run();
  EXPECT_EQ(observed, 50);
  EXPECT_EQ(sim.executed_count(), 50u);
}

}  // namespace
}  // namespace omcast
