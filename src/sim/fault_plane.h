// Lossy control-plane model for chaos experiments.
//
// The protocol layers (gossip, ROST locking, ELN, heartbeats) exchange
// control messages that the plain simulator delivers instantly and
// reliably. A FaultPlane sits between a sender and the simulator and
// subjects every control message to seeded, per-link faults:
//
//   * loss        -- the message is silently dropped (probability
//                    loss_rate, overridable per directed link);
//   * duplication -- a second copy is delivered with fresh jitter
//                    (probability dup_prob);
//   * reordering  -- every delivery is delayed by an extra U[0, jitter_s)
//                    on top of the base network delay, so two messages on
//                    the same link can overtake each other.
//
// All randomness comes from one seeded RNG, so a fault schedule is
// bit-reproducible: the same seed produces the same drops, duplicates and
// delays in the same order (the chaos regression tests replay schedules and
// assert identical traces). A default-constructed FaultPlane with zero
// rates still draws from the RNG per message, so enabling faults never
// changes *which* RNG draws protocols themselves make.
//
// Episodic loss models ISP-level correlated outages: nodes are assigned to
// link groups (SetNodeGroup) and a group flips between ON episodes -- during
// which every message touching a member of the group sees at least the
// episode's loss rate -- and quiet OFF gaps. Episode durations come from a
// SEPARATE seeded RNG (episode_rng_), so turning episodes on or off never
// shifts the per-message fault stream: a message's loss/dup draws stay
// bit-identical, only the rate they are compared against changes.
// Precedence per directed link: explicit SetLinkLossRate override, else
// max(base loss_rate, active episode rates of both endpoints).
//
// Endpoints are identified by the caller's node ids; the plane itself is
// protocol-agnostic. Injectable *failure* patterns (correlated stub-domain
// kills, flash departures, mid-repair deaths) live in exp/chaos.h -- they
// need session and topology context the message plane deliberately lacks.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "rand/rng.h"
#include "sim/simulator.h"

namespace omcast::sim {

struct FaultPlaneParams {
  // Probability a control message is dropped (applies per delivery attempt;
  // a duplicate rolls its own loss).
  double loss_rate = 0.0;
  // Probability a surviving message is delivered twice.
  double dup_prob = 0.0;
  // Extra delivery delay drawn uniformly from [0, jitter_s); with a
  // positive value, messages on one link can arrive out of order.
  double jitter_s = 0.0;
};

// One ISP-level correlated-loss process: while an episode is ON, messages
// touching the group's nodes see at least `loss_rate`; episodes alternate
// with OFF gaps whose durations are drawn per the `duration` kind.
struct EpisodicLossParams {
  double loss_rate = 1.0;  // loss floor while an episode is active
  double mean_on_s = 2.0;  // episode duration (mean, or exact when kFixed)
  double mean_off_s = 8.0; // gap between episodes (mean, or exact)
  enum class Duration { kExponential, kFixed };
  Duration duration = Duration::kExponential;
};

class FaultPlane {
 public:
  FaultPlane(Simulator& simulator, FaultPlaneParams params,
             std::uint64_t seed);
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // Submits one control message from node `from` to node `to` whose
  // fault-free delivery would take `base_delay_s`. Returns true when at
  // least one copy was scheduled, false when the message was lost. The
  // callback runs once per delivered copy; receivers must tolerate
  // duplicates and reordering.
  bool Deliver(int from, int to, double base_delay_s, Simulator::Callback cb);

  // Overrides the loss rate of the directed link from->to (e.g. to sever
  // one link entirely while the rest of the plane stays healthy). An
  // explicit override beats any episodic rate.
  void SetLinkLossRate(int from, int to, double rate);
  void ClearLinkOverrides() { link_loss_.clear(); }

  // --- episodic (ISP-level correlated) loss --------------------------------
  // Assigns `node` to link group `group` (e.g. its stub domain). A node
  // belongs to at most one group; re-assigning moves it.
  void SetNodeGroup(int node, int group);
  // Starts the group's on/off loss process: the first episode begins
  // immediately (so callers can pin "outage at t"), runs for a drawn ON
  // duration, then the process alternates OFF/ON until stopped. Restarting
  // a running group replaces its parameters and begins a fresh episode.
  void StartEpisodicLoss(int group, EpisodicLossParams params);
  // Ends the group's process; a pending toggle for an older start is
  // ignored (generation-checked), so stop/start races cannot resurrect a
  // dead process.
  void StopEpisodicLoss(int group);
  bool EpisodeActive(int group) const;

  const FaultPlaneParams& params() const { return params_; }

  // --- fault accounting ----------------------------------------------------
  long messages_sent() const { return sent_; }
  long messages_dropped() const { return dropped_; }
  long messages_duplicated() const { return duplicated_; }
  long messages_delivered() const { return delivered_; }
  long episodes_started() const { return episodes_started_; }

 private:
  static std::uint64_t LinkKey(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }
  struct EpisodeState {
    EpisodicLossParams params;
    bool active = false;
    // Bumped by every Start/Stop; a scheduled toggle carries the generation
    // it belongs to and no-ops when the process was since restarted/stopped.
    std::uint64_t generation = 0;
  };

  double LossRateFor(int from, int to) const;
  double EpisodicRateFor(int node) const;
  void ScheduleCopy(double base_delay_s, const Simulator::Callback& cb);
  double DrawDuration(double mean, const EpisodicLossParams& params);
  void ScheduleToggle(int group, std::uint64_t generation, double delay_s);

  Simulator& sim_;
  FaultPlaneParams params_;
  rnd::Rng rng_;
  // Episode durations draw from their own stream so enabling episodes never
  // perturbs per-message loss/dup/jitter draws.
  rnd::Rng episode_rng_;
  // Point lookups only (never iterated), so the bucket order cannot leak
  // into fault decisions.
  // omcast-lint: allow(unordered-iter)
  std::unordered_map<std::uint64_t, double> link_loss_;
  // omcast-lint: allow(unordered-iter)
  std::unordered_map<int, int> node_group_;
  // omcast-lint: allow(unordered-iter)
  std::unordered_map<int, EpisodeState> episodes_;
  long sent_ = 0;
  long dropped_ = 0;
  long duplicated_ = 0;
  long delivered_ = 0;
  long episodes_started_ = 0;
};

}  // namespace omcast::sim
