file(REMOVE_RECURSE
  "CMakeFiles/omcast_metrics.dir/collectors.cc.o"
  "CMakeFiles/omcast_metrics.dir/collectors.cc.o.d"
  "libomcast_metrics.a"
  "libomcast_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omcast_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
