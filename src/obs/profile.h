// Simulator profiling: per-event-type dispatch counts, callback wall-time
// histograms and event-queue depth sampling.
//
// This is the ONE place in the simulation stack where host wall-clock is
// legal (annotated for the determinism lint): profiling measures the
// simulator, never feeds it. A SimProfiler's numbers are host-dependent and
// are therefore excluded from every digest and every results field that the
// determinism tests compare; they surface only through the benches'
// --profile flag so perf work has a measured baseline.
//
// Usage: sim::Simulator::SetProfiler() installs a profiler; scheduling
// sites label their events with string-literal tags
// (ScheduleAt/ScheduleAfter's trailing parameter) and RunOne brackets each
// callback with BeginEvent/EndEvent. The ProfileAggregator merges the
// profilers of many runner cells (thread-safe) for one whole-grid table.
#pragma once

#include <chrono>  // omcast-lint: allow(wallclock)
#include <cstdint>
#include <map>
#include <string>

#include "obs/registry.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace omcast::obs {

// Thread-compatibility: a SimProfiler is owned by one simulation run on one
// thread (cell-confined, like obs::Registry); only ProfileAggregator::Merge
// crosses threads, after the owning run has finished mutating it.
class SimProfiler {
 public:
  struct TagStats {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };

  SimProfiler();

  // Called by the simulator around every dispatched callback. `tag` must be
  // a string literal (or otherwise outlive the call); nullptr buckets under
  // "untagged". `queue_depth` is the pending-event count at dispatch.
  void BeginEvent(const char* tag, std::size_t queue_depth);
  void EndEvent();

  // Called by the simulator around each Run()/RunUntil() loop. Unlike the
  // BeginEvent/EndEvent brackets -- which time callbacks only -- the loop
  // bracket includes queue operations (schedule/cancel/pop), so this is the
  // number that moves when the event queue itself gets faster; the headline
  // events-per-second rate in --profile tables derives from it.
  void BeginLoop();
  void EndLoop();

  // Memory sampling hook, called by the simulator every few thousand events
  // (and once per loop end): records high-water marks for the event-pool
  // occupancy and the process peak RSS (getrusage; 0 where unsupported).
  void SampleMemory(std::size_t pool_live, std::size_t pool_capacity);

  std::uint64_t events() const { return events_; }
  double loop_us() const { return loop_us_; }
  std::uint64_t loop_events() const { return loop_events_; }
  // Events dispatched per wall second of run-loop time (0 before any loop).
  double events_per_sec() const {
    return loop_us_ > 0.0 ? static_cast<double>(loop_events_) /
                                (loop_us_ * 1e-6)
                          : 0.0;
  }
  // Process-wide peak RSS observed during this run. getrusage's high-water
  // mark is monotone over the process lifetime, so in a multi-cell grid a
  // late cell inherits every earlier cell's peak -- this is an honest
  // process number, not a per-run attribution; see rss_delta_bytes().
  std::uint64_t peak_rss_bytes() const { return peak_rss_bytes_; }
  // Peak-RSS growth attributable to this run: the peak observed while it
  // ran minus the process high-water mark when the profiler was
  // constructed. 0 when the run stayed under earlier cells' peak (its real
  // footprint is then unobservable via getrusage).
  std::uint64_t rss_delta_bytes() const {
    return peak_rss_bytes_ > baseline_rss_bytes_
               ? peak_rss_bytes_ - baseline_rss_bytes_
               : 0;
  }
  std::uint64_t baseline_rss_bytes() const { return baseline_rss_bytes_; }
  std::size_t pool_live_max() const { return pool_live_max_; }
  std::size_t pool_capacity_max() const { return pool_capacity_max_; }
  const std::map<std::string, TagStats>& per_tag() const { return per_tag_; }
  const Histogram& wall_us_hist() const { return wall_us_; }
  const Histogram& queue_depth_hist() const { return depth_; }

  // Human-readable per-tag dispatch/wall-time table plus queue-depth
  // summary (the --profile output).
  std::string FormatTable() const;

 private:
  using Clock = std::chrono::steady_clock;  // omcast-lint: allow(wallclock)

  std::map<std::string, TagStats> per_tag_;
  Histogram wall_us_;
  Histogram depth_;
  std::uint64_t events_ = 0;
  TagStats* current_ = nullptr;
  Clock::time_point started_{};
  // Run-loop timing (queue operations included).
  double loop_us_ = 0.0;
  std::uint64_t loop_events_ = 0;
  std::uint64_t loop_start_events_ = 0;
  Clock::time_point loop_started_{};
  bool in_loop_ = false;
  // Memory high-water marks. The baseline is the process peak RSS at
  // construction; the delta accessor subtracts it so per-cell tables do not
  // attribute earlier cells' allocations to this run.
  std::uint64_t baseline_rss_bytes_ = 0;
  std::uint64_t peak_rss_bytes_ = 0;
  std::size_t pool_live_max_ = 0;
  std::size_t pool_capacity_max_ = 0;
};

// Thread-safe accumulation of many cells' profilers into one table (the
// runner executes cells on a thread pool; each cell owns a private
// SimProfiler and merges it here when done).
class ProfileAggregator {
 public:
  // The caller must have stopped mutating `profiler` (cells merge their
  // private profiler exactly once, after the simulation run completes);
  // Merge reads it unsynchronized.
  void Merge(const SimProfiler& profiler) OMCAST_EXCLUDES(mu_);

  std::uint64_t events() const OMCAST_EXCLUDES(mu_);
  // Sum of merged run-loop wall time / dispatched-in-loop events; the
  // aggregate events-per-second rate divides the two.
  double loop_us() const OMCAST_EXCLUDES(mu_);
  std::uint64_t loop_events() const OMCAST_EXCLUDES(mu_);
  double events_per_sec() const OMCAST_EXCLUDES(mu_);
  // Maximum over merged cells (cells share the process, so peak RSS is a
  // max, not a sum).
  std::uint64_t peak_rss_bytes() const OMCAST_EXCLUDES(mu_);
  // Largest single-run RSS growth over merged cells (max of each cell's
  // rss_delta_bytes) -- the closest getrusage gets to "the hungriest cell".
  std::uint64_t rss_delta_max_bytes() const OMCAST_EXCLUDES(mu_);
  std::string FormatTable() const OMCAST_EXCLUDES(mu_);

 private:
  struct DepthStats {
    std::uint64_t samples = 0;
    double sum = 0.0;
    double max = 0.0;
  };

  mutable util::Mutex mu_;
  std::map<std::string, SimProfiler::TagStats> per_tag_ OMCAST_GUARDED_BY(mu_);
  DepthStats depth_ OMCAST_GUARDED_BY(mu_);
  std::uint64_t events_ OMCAST_GUARDED_BY(mu_) = 0;
  double loop_us_ OMCAST_GUARDED_BY(mu_) = 0.0;
  std::uint64_t loop_events_ OMCAST_GUARDED_BY(mu_) = 0;
  std::uint64_t peak_rss_bytes_ OMCAST_GUARDED_BY(mu_) = 0;
  std::uint64_t rss_delta_max_bytes_ OMCAST_GUARDED_BY(mu_) = 0;
  std::size_t pool_live_max_ OMCAST_GUARDED_BY(mu_) = 0;
  std::size_t pool_capacity_max_ OMCAST_GUARDED_BY(mu_) = 0;
  int merged_ OMCAST_GUARDED_BY(mu_) = 0;
};

// Process-wide aggregator behind the benches' --profile flag: every cell
// merges into it and the bench prints one table after the grid completes.
ProfileAggregator& GlobalProfileAggregator();

}  // namespace omcast::obs
