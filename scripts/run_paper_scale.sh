#!/bin/bash
# Regenerates every paper figure at the full Section 5 scale into
# results/paper/. Expect a few hours on one core; the sweep figures
# (4, 7, 8, 10) dominate because the centralized relaxed-BO/TO baselines
# do a global scan per join.
set -u
cd "$(dirname "$0")/.."
mkdir -p results/paper
run() {
  echo "=== START $1 (reps=$2) $(date +%H:%M:%S) ==="
  ./build/bench/"$1" --scale=paper --reps="$2" > "results/paper/$1.txt" 2>&1
  echo "=== DONE  $1 $(date +%H:%M:%S) ==="
}
run fig04_disruptions 1
run fig07_service_delay 1
run fig08_stretch 1
run fig10_protocol_cost 1
run fig05_disruption_cdf 1
run fig11_switch_interval 2
run fig12_group_size 2
run fig13_buffer_size 2
run fig14_rost_cer 3
run fig06_member_disruptions 1
run fig09_member_delay 1
run ablation_btp 2
run ablation_mlc 2
run ablation_gossip 2
echo ALL-PAPER-BENCHES-DONE
