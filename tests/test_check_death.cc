// Death tests for the always-on check layer (util::Check / util::Fail) and
// semantics tests for the deep OMCAST_DCHECK tier: enabled builds abort on
// violation, disabled builds must not even evaluate the condition.
#include "util/check.h"

#include <gtest/gtest.h>

#include "util/hash.h"

namespace omcast::util {
namespace {

TEST(CheckDeathTest, FailingCheckAbortsWithDiagnostic) {
  EXPECT_DEATH(Check(false, "tree must stay acyclic"),
               "CHECK failed.*tree must stay acyclic");
}

TEST(CheckDeathTest, DiagnosticNamesTheCallSite) {
  EXPECT_DEATH(Check(false, "located"), "test_check_death.cc");
}

TEST(CheckDeathTest, FailAlwaysAborts) {
  EXPECT_DEATH(Fail("unreachable branch"), "CHECK failed.*unreachable branch");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  Check(true, "holds");  // must not abort
}

TEST(DcheckTest, EnabledTierMatchesBuildConfiguration) {
#if defined(OMCAST_ENABLE_DCHECK)
  EXPECT_TRUE(kDcheckEnabled);
#else
  EXPECT_FALSE(kDcheckEnabled);
#endif
}

TEST(DcheckDeathTest, ViolationAbortsOnlyWhenEnabled) {
  if (kDcheckEnabled) {
    EXPECT_DEATH(OMCAST_DCHECK(false, "deep invariant"),
                 "CHECK failed.*deep invariant");
  } else {
    OMCAST_DCHECK(false, "deep invariant");  // compiled out: must not abort
  }
}

TEST(DcheckTest, DisabledTierDoesNotEvaluateTheCondition) {
  int evaluations = 0;
  auto costly = [&evaluations] {
    ++evaluations;
    return true;
  };
  OMCAST_DCHECK(costly(), "expensive audit");
  EXPECT_EQ(evaluations, kDcheckEnabled ? 1 : 0);
}

TEST(DcheckTest, PassingDcheckIsSilentInEveryTier) {
  OMCAST_DCHECK(2 + 2 == 4, "arithmetic holds");
}

TEST(RollingHashTest, OrderSensitiveAndDeterministic) {
  RollingHash a, b, c;
  a.MixU64(1);
  a.MixU64(2);
  b.MixU64(1);
  b.MixU64(2);
  c.MixU64(2);
  c.MixU64(1);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(RollingHashTest, DoubleMixesExactBitPattern) {
  RollingHash pos, neg;
  pos.MixDouble(0.0);
  neg.MixDouble(-0.0);
  EXPECT_NE(pos.digest(), neg.digest());  // bit-exact, not value-equal
}

TEST(RollingHashTest, EmptyHashIsTheFnvOffsetBasis) {
  EXPECT_EQ(RollingHash{}.digest(), 14695981039346656037ULL);
}

}  // namespace
}  // namespace omcast::util
