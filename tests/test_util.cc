#include <gtest/gtest.h>

#include <sstream>

#include "util/flags.h"
#include "util/table.h"

namespace omcast::util {
namespace {

TEST(FlagSet, ParsesEqualsAndSpaceForms) {
  FlagSet f;
  f.Define("alpha", "1", "").Define("beta", "x", "");
  const char* argv[] = {"prog", "--alpha=7", "--beta", "hello"};
  ASSERT_TRUE(f.Parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(f.GetInt("alpha"), 7);
  EXPECT_EQ(f.GetString("beta"), "hello");
}

TEST(FlagSet, DefaultsApplyWhenUnset) {
  FlagSet f;
  f.Define("x", "3.5", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.Parse(1, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(f.GetDouble("x"), 3.5);
}

TEST(FlagSet, RejectsUnknownFlag) {
  FlagSet f;
  f.Define("x", "1", "");
  const char* argv[] = {"prog", "--nope=2"};
  EXPECT_FALSE(f.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagSet, RejectsMissingValue) {
  FlagSet f;
  f.Define("x", "1", "");
  const char* argv[] = {"prog", "--x"};
  EXPECT_FALSE(f.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagSet, HelpReturnsFalse) {
  FlagSet f;
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(f.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagSet, BoolForms) {
  FlagSet f;
  f.Define("a", "true", "").Define("b", "0", "").Define("c", "yes", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.Parse(1, const_cast<char**>(argv)));
  EXPECT_TRUE(f.GetBool("a"));
  EXPECT_FALSE(f.GetBool("b"));
  EXPECT_TRUE(f.GetBool("c"));
}

TEST(FlagSet, IntList) {
  FlagSet f;
  f.Define("sizes", "2000,5000,8000", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.Parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(f.GetIntList("sizes"), (std::vector<int>{2000, 5000, 8000}));
}

TEST(FlagSet, IntListSingleAndEmptyTokens) {
  FlagSet f;
  f.Define("sizes", "42", "");
  const char* argv[] = {"prog", "--sizes=7,,9"};
  ASSERT_TRUE(f.Parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(f.GetIntList("sizes"), (std::vector<int>{7, 9}));
}

TEST(Table, AlignsColumns) {
  Table t({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "2"});
  std::ostringstream os;
  t.Print(os, "title");
  const std::string out = os.str();
  EXPECT_NE(out.find("title\n"), std::string::npos);
  EXPECT_NE(out.find("longer  2"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, FormatsDoubleRows) {
  Table t({"k", "x", "y"});
  t.AddRow("row", {1.23456, 2.0}, 2);
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_NE(os.str().find("2.00"), std::string::npos);
}

TEST(Table, FormatDoubleHelper) {
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(TableDeath, WrongArityAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "arity");
}

}  // namespace
}  // namespace omcast::util
