"""Protocol-invariant rule: every ROST state-transition function must emit
its paired obs::EventKind trace event.

The 21-kind EventKind taxonomy (src/obs/trace.h) is the observability
contract the replay/causality tests are built on: tests/test_trace_causality
proves properties like "every lease release pairs with a grant" *from the
trace alone*, so a transition that silently skips its emission makes those
proofs vacuous rather than failing them. This rule pins, statically:

  1. each known transition function of core::RostProtocol contains an
     EventKind::<paired kind> token for every kind it owns, and
  2. (cross-reference) every taxonomy kind in the ROST switch/lock families
     has at least one emit site in the file defining the transitions, so a
     kind added to the enum cannot silently go un-emitted.

The table below is the protocol contract; extending ROST with a new
transition means adding its pairing here (the fixtures pin the rule's
behaviour on both the missing- and present-emission sides).
"""

from __future__ import annotations

import re
from pathlib import Path

from .registry import rule
from .source import SourceFile, find_method_definitions

# Transition function -> the EventKind tokens its body must contain.
# CompleteHandshake owns both outcomes of a finished handshake (commit and
# neighbourhood-changed abort); GrantLease owns the grant and schedules the
# expiry event, so both kinds must appear in its body.
TRANSITION_EMITS: dict[str, tuple[str, ...]] = {
    "CheckSwitch": ("kSwitchAttempt",),
    "CompleteHandshake": ("kSwitchCommit", "kSwitchAbort"),
    "OnLockRequest": ("kLockRequest",),
    "OnLockDeny": ("kLockDeny",),
    "OnLockTimeout": ("kLockTimeout",),
    "GrantLease": ("kLockGrant", "kLockExpire"),
    "ReleaseLease": ("kLockRelease",),
}

# Taxonomy families owned by ROST: every kind with one of these prefixes
# must have an emit site in the transition-defining file.
ROST_FAMILY_PREFIXES = ("kSwitch", "kLock")

CLASS_NAME = "RostProtocol"

ENUM_KIND_RE = re.compile(r"^\s*(k[A-Z]\w*)\s*[=,]")


def _taxonomy_kinds(sf: SourceFile) -> list[str] | None:
    """EventKind enumerators from src/obs/trace.h, located by walking up
    from the linted file to the directory that contains src/obs/trace.h.
    Returns None when the taxonomy is unavailable (fixtures, exported
    snippets) -- the cross-reference is skipped, never guessed."""
    for parent in sf.path.resolve().parents:
        trace_h = parent / "src" / "obs" / "trace.h"
        if trace_h.is_file():
            try:
                text = trace_h.read_text(encoding="utf-8", errors="replace")
            except OSError:
                return None
            kinds: list[str] = []
            in_enum = False
            for line in text.splitlines():
                if "enum class EventKind" in line:
                    in_enum = True
                    continue
                if in_enum:
                    if line.strip().startswith("};"):
                        break
                    m = ENUM_KIND_RE.match(line)
                    if m:
                        kinds.append(m.group(1))
            return kinds or None
    return None


@rule("rost-event-emit",
      "ROST state-transition function missing its paired EventKind trace "
      "emission (cross-referenced against the obs::EventKind taxonomy)")
def find_rost_event_emit(sf: SourceFile):
    defs = [d for d in find_method_definitions(sf, CLASS_NAME)
            if d.name in TRANSITION_EMITS]
    if not defs:
        return []
    hits = []
    emitted_kinds: set[str] = set()
    kind_re = re.compile(r"EventKind::(k\w+)")
    for i, line in enumerate(sf.code_lines):
        for m in kind_re.finditer(line):
            emitted_kinds.add(m.group(1))
    for d in defs:
        body = " ".join(sf.code_lines[d.body_start:d.end + 1])
        for kind in TRANSITION_EMITS[d.name]:
            if not re.search(r"EventKind::" + kind + r"\b", body):
                hits.append((d.start,
                             f"ROST transition '{d.name}' must emit "
                             f"EventKind::{kind}: the trace-causality tests "
                             f"prove lease/switch invariants from the trace "
                             f"alone, so a skipped emission silently "
                             f"un-checks them (pairing table: "
                             f"scripts/omcast_lint/rules_protocol.py)"))
    # Cross-reference: a ROST-family kind in the taxonomy with no emit site
    # anywhere in the transition-defining file.
    taxonomy = _taxonomy_kinds(sf)
    if taxonomy:
        for kind in taxonomy:
            if kind.startswith(ROST_FAMILY_PREFIXES) and \
                    kind not in emitted_kinds:
                hits.append((0, f"EventKind::{kind} belongs to the ROST "
                                f"switch/lock family but has no emit site in "
                                f"this file: new taxonomy kinds must be "
                                f"emitted by their transition (or the family "
                                f"prefix table updated)"))
    return hits
