"""Committed-baseline workflow: pre-existing findings are triaged into a
checked-in JSON file instead of being ignored, and CI fails only on findings
NOT in the baseline.

Fingerprints are line-number-free so unrelated edits above a finding do not
churn the baseline: a fingerprint is

    <repo-relative path>:<rule>:<sha1 of the blanked source line, without
    whitespace>[:<occurrence>]

with <occurrence> disambiguating identical lines within one file (in file
order). Shrinking the baseline is always safe; growing it is a reviewed
decision (the diff shows exactly which finding was deferred and why the
commit message must say).
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path

from .registry import Finding
from .source import strip_comments_and_strings

BASELINE_VERSION = 1


def _normalized_line(path: Path, line: int) -> str:
    """The blanked (comment/string-free) text of `line` (1-based), with all
    whitespace removed, so reformatting does not change fingerprints."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return ""
    lines = strip_comments_and_strings(text).splitlines()
    if not 1 <= line <= len(lines):
        return ""
    return re.sub(r"\s+", "", lines[line - 1])


def fingerprint(finding: Finding, root: Path,
                occurrence: int) -> str:
    rel = finding.path.resolve()
    try:
        rel = rel.relative_to(root.resolve())
    except ValueError:
        pass  # outside the root: keep the absolute path
    digest = hashlib.sha1(
        _normalized_line(finding.path, finding.line).encode()).hexdigest()[:12]
    base = f"{rel.as_posix()}:{finding.rule}:{digest}"
    return base if occurrence == 0 else f"{base}:{occurrence}"


def fingerprints(findings: list[Finding], root: Path) -> list[str]:
    """Fingerprint per finding, in order, with occurrence disambiguation."""
    seen: dict[str, int] = {}
    out = []
    for f in findings:
        base = fingerprint(f, root, 0)
        n = seen.get(base, 0)
        seen[base] = n + 1
        out.append(base if n == 0 else f"{base}:{n}")
    return out


def load(path: Path) -> set[str]:
    """Loads a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return set()
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: unsupported baseline version "
                         f"{doc.get('version')!r}")
    entries = doc.get("findings", [])
    if not isinstance(entries, list) or \
            not all(isinstance(e, str) for e in entries):
        raise ValueError(f"{path}: 'findings' must be a list of fingerprint "
                         f"strings")
    return set(entries)


def write(path: Path, findings: list[Finding], root: Path) -> None:
    doc = {
        "version": BASELINE_VERSION,
        "comment": "Triaged pre-existing omcast-lint findings. Entries are "
                   "line-number-free fingerprints (see "
                   "scripts/omcast_lint/baseline.py); remove entries as the "
                   "findings are fixed, add entries only with review.",
        "findings": sorted(set(fingerprints(findings, root))),
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def split(findings: list[Finding], baseline: set[str],
          root: Path) -> tuple[list[Finding], list[Finding], set[str]]:
    """(new, baselined, stale_entries): findings not in / in the baseline,
    and baseline entries that matched nothing (candidates for removal)."""
    fps = fingerprints(findings, root)
    new, old = [], []
    used: set[str] = set()
    for f, fp in zip(findings, fps):
        if fp in baseline:
            old.append(f)
            used.add(fp)
        else:
            new.append(f)
    return new, old, baseline - used
