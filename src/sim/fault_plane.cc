#include "sim/fault_plane.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace omcast::sim {

FaultPlane::FaultPlane(Simulator& simulator, FaultPlaneParams params,
                       std::uint64_t seed)
    : sim_(simulator),
      params_(params),
      rng_(seed),
      episode_rng_(seed ^ 0xe915c0deULL) {
  util::Check(params_.loss_rate >= 0.0 && params_.loss_rate <= 1.0,
              "loss rate must be a probability");
  util::Check(params_.dup_prob >= 0.0 && params_.dup_prob <= 1.0,
              "duplication probability must be a probability");
  util::Check(params_.jitter_s >= 0.0, "jitter must be non-negative");
}

double FaultPlane::LossRateFor(int from, int to) const {
  const auto it = link_loss_.find(LinkKey(from, to));
  if (it != link_loss_.end()) return it->second;
  return std::max({params_.loss_rate, EpisodicRateFor(from),
                   EpisodicRateFor(to)});
}

double FaultPlane::EpisodicRateFor(int node) const {
  if (episodes_.empty()) return 0.0;
  const auto g = node_group_.find(node);
  if (g == node_group_.end()) return 0.0;
  const auto e = episodes_.find(g->second);
  if (e == episodes_.end() || !e->second.active) return 0.0;
  return e->second.params.loss_rate;
}

void FaultPlane::SetNodeGroup(int node, int group) {
  node_group_[node] = group;
}

double FaultPlane::DrawDuration(double mean,
                                const EpisodicLossParams& params) {
  return params.duration == EpisodicLossParams::Duration::kFixed
             ? mean
             : episode_rng_.ExponentialMean(mean);
}

void FaultPlane::ScheduleToggle(int group, std::uint64_t generation,
                                double delay_s) {
  sim_.ScheduleAfter(
      delay_s,
      [this, group, generation] {
        const auto it = episodes_.find(group);
        if (it == episodes_.end() || it->second.generation != generation)
          return;  // restarted or stopped since this toggle was scheduled
        EpisodeState& st = it->second;
        st.active = !st.active;
        double mean = st.params.mean_off_s;
        if (st.active) {
          ++episodes_started_;
          mean = st.params.mean_on_s;
        }
        ScheduleToggle(group, generation, DrawDuration(mean, st.params));
      },
      "fault.episode");
}

void FaultPlane::StartEpisodicLoss(int group, EpisodicLossParams params) {
  util::Check(params.loss_rate >= 0.0 && params.loss_rate <= 1.0,
              "episodic loss rate must be a probability");
  util::Check(params.mean_on_s > 0.0 && params.mean_off_s > 0.0,
              "episode durations must be positive");
  EpisodeState& st = episodes_[group];
  st.params = params;
  ++st.generation;
  st.active = true;  // the first episode begins at the call instant
  ++episodes_started_;
  ScheduleToggle(group, st.generation,
                 DrawDuration(params.mean_on_s, params));
}

void FaultPlane::StopEpisodicLoss(int group) {
  const auto it = episodes_.find(group);
  if (it == episodes_.end()) return;
  ++it->second.generation;
  it->second.active = false;
}

bool FaultPlane::EpisodeActive(int group) const {
  const auto it = episodes_.find(group);
  return it != episodes_.end() && it->second.active;
}

void FaultPlane::SetLinkLossRate(int from, int to, double rate) {
  util::Check(rate >= 0.0 && rate <= 1.0,
              "per-link loss rate must be a probability");
  link_loss_[LinkKey(from, to)] = rate;
}

void FaultPlane::ScheduleCopy(double base_delay_s,
                              const Simulator::Callback& cb) {
  const double extra = rng_.Uniform(0.0, params_.jitter_s);
  ++delivered_;
  sim_.ScheduleAfter(base_delay_s + extra, Simulator::Callback(cb),
                     "net.deliver");
}

bool FaultPlane::Deliver(int from, int to, double base_delay_s,
                         Simulator::Callback cb) {
  util::Check(base_delay_s >= 0.0, "base delay must be non-negative");
  ++sent_;
  const double loss = LossRateFor(from, to);
  // One Bernoulli per fault class per message, drawn unconditionally so a
  // message's fate depends only on its position in the seeded stream, never
  // on the fate of earlier messages.
  const bool lost = rng_.Bernoulli(loss);
  const bool duped = rng_.Bernoulli(params_.dup_prob);
  if (lost) {
    ++dropped_;
    return false;
  }
  ScheduleCopy(base_delay_s, cb);
  if (duped) {
    ++duplicated_;
    ScheduleCopy(base_delay_s, cb);
  }
  return true;
}

}  // namespace omcast::sim
