#include "net/topology.h"

#include <gtest/gtest.h>

#include "rand/rng.h"

namespace omcast::net {
namespace {

TEST(Topology, PaperInstanceHas15600Nodes) {
  const TopologyParams p = PaperTopologyParams();
  EXPECT_EQ(p.transit_domains * p.transit_nodes_per_domain, 240);
  EXPECT_EQ(240 * p.stub_domains_per_transit_node * p.nodes_per_stub_domain,
            15360);
}

TEST(Topology, GeneratesRequestedSizes) {
  rnd::Rng rng(1);
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  EXPECT_EQ(t.num_transit_nodes(), 6);
  EXPECT_EQ(t.num_stub_domains(), 12);
  EXPECT_EQ(t.num_stub_nodes(), 96);
  EXPECT_EQ(t.FlatNodeCount(), 102);
}

TEST(Topology, DelayIsSymmetricAndZeroOnSelf) {
  rnd::Rng rng(2);
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  rnd::Rng pick(3);
  for (int i = 0; i < 200; ++i) {
    const HostId a = static_cast<HostId>(pick.UniformIndex(
        static_cast<std::size_t>(t.num_stub_nodes())));
    const HostId b = static_cast<HostId>(pick.UniformIndex(
        static_cast<std::size_t>(t.num_stub_nodes())));
    EXPECT_DOUBLE_EQ(t.Delay(a, b), t.Delay(b, a));
    EXPECT_GT(t.Delay(a, b) + (a == b ? 1.0 : 0.0), 0.0);
  }
  EXPECT_DOUBLE_EQ(t.Delay(0, 0), 0.0);
}

TEST(Topology, IntraDomainDelaysUseStubRange) {
  rnd::Rng rng(4);
  const TopologyParams p = TinyTopologyParams();
  const Topology t = Topology::Generate(p, rng);
  // Hosts 0..7 share stub domain 0; their shortest path uses only stub-stub
  // links of [2,4] ms each, over at most n-1 hops.
  for (HostId a = 0; a < 8; ++a)
    for (HostId b = a + 1; b < 8; ++b) {
      const double d = t.Delay(a, b);
      EXPECT_GE(d, p.ss_delay_lo);
      EXPECT_LE(d, p.ss_delay_hi * (p.nodes_per_stub_domain - 1));
      EXPECT_EQ(t.DomainOf(a), t.DomainOf(b));
    }
}

TEST(Topology, CrossDomainDelayIncludesGatewayAndCore) {
  rnd::Rng rng(5);
  const TopologyParams p = TinyTopologyParams();
  const Topology t = Topology::Generate(p, rng);
  // Hosts in different stub domains traverse two gateway links at minimum.
  const HostId a = 0;
  const HostId b = t.num_stub_nodes() - 1;
  ASSERT_NE(t.DomainOf(a), t.DomainOf(b));
  EXPECT_GE(t.Delay(a, b), 2 * p.ts_delay_lo);
}

TEST(Topology, DomainAndTransitIndexing) {
  rnd::Rng rng(6);
  const TopologyParams p = TinyTopologyParams();
  const Topology t = Topology::Generate(p, rng);
  EXPECT_EQ(t.DomainOf(0), 0);
  EXPECT_EQ(t.DomainOf(p.nodes_per_stub_domain), 1);
  EXPECT_EQ(t.TransitOfDomain(0), 0);
  EXPECT_EQ(t.TransitOfDomain(p.stub_domains_per_transit_node), 1);
}

TEST(Topology, DeterministicGivenSeed) {
  rnd::Rng r1(42), r2(42);
  const Topology a = Topology::Generate(TinyTopologyParams(), r1);
  const Topology b = Topology::Generate(TinyTopologyParams(), r2);
  for (HostId i = 0; i < a.num_stub_nodes(); i += 7)
    for (HostId j = 0; j < a.num_stub_nodes(); j += 11)
      EXPECT_DOUBLE_EQ(a.Delay(i, j), b.Delay(i, j));
}

TEST(Topology, FlatGraphIsConnected) {
  rnd::Rng rng(7);
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  const auto dist = Dijkstra(t.FlatNodeCount(), t.FlatEdges(), 0);
  for (int i = 0; i < t.FlatNodeCount(); ++i)
    EXPECT_TRUE(std::isfinite(dist[static_cast<std::size_t>(i)]))
        << "node " << i << " unreachable";
}

// With single-host stub domains every stub is a pure leaf, so hierarchical
// routing must match true shortest paths exactly.
TEST(Topology, HierarchicalEqualsDijkstraWhenStubsAreLeaves) {
  TopologyParams p;
  p.transit_domains = 3;
  p.transit_nodes_per_domain = 4;
  p.stub_domains_per_transit_node = 2;
  p.nodes_per_stub_domain = 1;
  rnd::Rng rng(8);
  const Topology t = Topology::Generate(p, rng);
  for (HostId a = 0; a < t.num_stub_nodes(); ++a) {
    const auto dist = Dijkstra(t.FlatNodeCount(), t.FlatEdges(), a);
    for (HostId b = 0; b < t.num_stub_nodes(); ++b)
      EXPECT_NEAR(t.Delay(a, b), dist[static_cast<std::size_t>(b)], 1e-9);
  }
}

// With multi-host stub domains, hierarchical routing never reports less
// than the true shortest path (it restricts the path shape).
TEST(Topology, HierarchicalNeverBeatsDijkstra) {
  rnd::Rng rng(9);
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  for (HostId a = 0; a < t.num_stub_nodes(); a += 5) {
    const auto dist = Dijkstra(t.FlatNodeCount(), t.FlatEdges(), a);
    for (HostId b = 0; b < t.num_stub_nodes(); ++b)
      EXPECT_GE(t.Delay(a, b) + 1e-9, dist[static_cast<std::size_t>(b)]);
  }
}

TEST(Topology, PaperScaleGeneratesQuickly) {
  rnd::Rng rng(10);
  const Topology t = Topology::Generate(PaperTopologyParams(), rng);
  EXPECT_EQ(t.num_stub_nodes(), 15360);
  EXPECT_EQ(t.num_transit_nodes(), 240);
  // Spot-check a few delays for sanity.
  EXPECT_GT(t.Delay(0, 15359), 0.0);
  EXPECT_LT(t.Delay(0, 15359), 1000.0);
}

struct SeedCase {
  std::uint64_t seed;
};

class TopologyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// Property sweep: every seed yields a topology whose delay oracle is
// finite, symmetric, and respects the minimum link delay.
TEST_P(TopologyPropertyTest, DelayOracleWellFormed) {
  rnd::Rng rng(GetParam());
  const Topology t = Topology::Generate(TinyTopologyParams(), rng);
  rnd::Rng pick(GetParam() + 1);
  for (int i = 0; i < 100; ++i) {
    const HostId a = static_cast<HostId>(pick.UniformIndex(
        static_cast<std::size_t>(t.num_stub_nodes())));
    const HostId b = static_cast<HostId>(pick.UniformIndex(
        static_cast<std::size_t>(t.num_stub_nodes())));
    const double d = t.Delay(a, b);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_DOUBLE_EQ(d, t.Delay(b, a));
    if (a != b) {
      EXPECT_GE(d, TinyTopologyParams().ss_delay_lo);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace omcast::net
