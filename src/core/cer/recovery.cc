#include "core/cer/recovery.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace omcast::core {

OutageResult SimulateOutage(const OutageSpec& spec) {
  util::Check(spec.detect_s >= 0.0 && spec.rejoin_s >= 0.0,
              "outage phases must be non-negative");
  util::Check(spec.buffer_s >= 0.0, "buffer must be non-negative");
  util::Check(spec.packet_rate > 0.0, "packet rate must be positive");

  OutageResult result;
  const double hole_s = spec.detect_s + spec.rejoin_s;
  result.packets_total =
      static_cast<int>(std::llround(hole_s * spec.packet_rate));

  // Assemble the repair chain: walk sources in distance order, accumulating
  // request-forwarding latency; dead/affected nodes NACK and forward. Under
  // cooperative mode stripes accumulate until they cover the full rate;
  // under single-source mode the walk stops at the first usable node.
  double latency = 0.0;
  double rate = 0.0;
  double service_latency = 0.0;  // latency until the first serving node
  bool serving = false;
  for (const RecoverySource& src : spec.chain) {
    latency += src.hop_latency_s;
    if (!src.usable || src.rate_fraction <= 0.0) continue;
    if (!serving) {
      service_latency = latency;
      serving = true;
    }
    rate += src.rate_fraction;
    if (spec.mode == RecoveryMode::kSingleSource) break;
    if (rate >= 1.0) break;  // stripes cover the full stream rate
  }
  rate = std::min(rate, 1.0);
  result.aggregate_rate = rate;

  // Recovery cannot start before the failure is detected and the request
  // has reached the serving stripe(s).
  const double service_start = spec.detect_s + service_latency;
  result.service_start_s = service_start;

  if (rate <= 0.0 || result.packets_total == 0) {
    result.packets_lost = result.packets_total;
    result.starving_s =
        static_cast<double>(result.packets_total) / spec.packet_rate;
    return result;
  }

  // Serve hole packets in sequence order at the aggregate rate. Packet n is
  // generated at g_n = n / packet_rate (failure at t = 0), can be served no
  // earlier than its generation or the service start, and must arrive by
  // g_n + buffer_s to make its playback deadline. Expired packets are
  // skipped without consuming service time ("any packet missing the
  // playback deadline is meaningless").
  const double service_time = 1.0 / (rate * spec.packet_rate);
  double server_free_at = service_start;
  for (int n = 0; n < result.packets_total; ++n) {
    const double generated = static_cast<double>(n) / spec.packet_rate;
    const double deadline = generated + spec.buffer_s;
    const double start = std::max(server_free_at, generated);
    const double done = start + service_time;
    if (done <= deadline) {
      ++result.packets_recovered;
      server_free_at = done;
    } else {
      ++result.packets_lost;
    }
  }
  result.starving_s =
      static_cast<double>(result.packets_lost) / spec.packet_rate;
  OMCAST_DCHECK(result.packets_recovered + result.packets_lost ==
                    result.packets_total,
                "outage accounting: recovered + lost == total");
  OMCAST_DCHECK(result.aggregate_rate >= 0.0 && result.aggregate_rate <= 1.0,
                "aggregate repair rate is a fraction of the stream rate");
  OMCAST_DCHECK(result.service_start_s >= spec.detect_s,
                "repair cannot begin before the failure is detected");
  return result;
}

}  // namespace omcast::core
