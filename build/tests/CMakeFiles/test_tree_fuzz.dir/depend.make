# Empty dependencies file for test_tree_fuzz.
# This may be replaced when dependencies are built.
