// Calendar queue (Brown 1988) with a pooled event slab: the O(1)-amortized
// pending-event set behind sim::Simulator's default queue mode.
//
// Design, in one breath: events live in a slab (std::vector<Event>) recycled
// through a LIFO free list, so steady-state scheduling performs no heap
// allocation beyond what each callback's std::function already owns; a
// bucket holds one Entry per *distinct* pending time -- sorted descending so
// the bucket minimum is the back -- and each Entry chains its equal-time
// events through doubly-linked slab slots in insertion (= seq) order, which
// preserves the simulator's FIFO-at-equal-times contract while making the
// synchronized-timer pileup (10^5 monitors armed at one instant) O(1) per
// insert, pop and cancel instead of an O(n) memmove; a bucket's index is
// floor(time / width) modulo a power-of-two bucket count; dispatch walks the
// calendar one bucket-width "day" at a time and falls back to a direct
// minimum scan after a fruitless full year, so sparse tails (departure
// timers hours out) cannot make a single pop unbounded.
//
// Cancellation is EAGER: Erase() unlinks the chain node and frees the slot
// immediately, so occupancy tracks the live event count and size() is exact.
// The id -> slot mapping needed for cancellation is an open-addressing table
// with backward-shift deletion -- deterministic, iteration-free and
// allocation-free at steady state (std::unordered_* would heap-allocate a
// node per pending event, which is precisely the churn this queue removes).
//
// Determinism: width estimation and resizing depend only on the pending set
// (sampled time gaps and operation counters), never on wall clock or RNG, so
// two runs that schedule identical (time, seq) streams make identical
// resizing decisions. Event ids are assigned by the Simulator and are
// sequential in every queue mode; replay digests hash (time, id) pairs and
// therefore cannot tell the calendar from the binary heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace omcast::sim {

using Time = double;

class CalendarQueue {
 public:
  using Callback = std::function<void()>;

  // Occupancy snapshot for obs::SimProfiler / bench --profile tables.
  struct PoolStats {
    std::size_t live = 0;            // events currently pending
    std::size_t slab_capacity = 0;   // pooled Event slots (live + free)
    std::size_t bucket_count = 0;    // calendar days per year
    double bucket_width_s = 0.0;     // seconds per day
    std::uint64_t rebuilds = 0;      // resize / re-width operations so far
  };

  CalendarQueue();
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  // Inserts an event. (time, seq) must be unique per event (seq strictly
  // increasing across all inserts); `id` must not currently be pending.
  void Insert(Time time, std::uint64_t seq, std::uint64_t id, const char* tag,
              Callback cb);

  // Removes the pending event `id`. Returns false if no such event pends.
  bool Erase(std::uint64_t id);

  // True if `id` is pending.
  bool Contains(std::uint64_t id) const;

  // Time of the earliest pending event. Requires !empty().
  Time PeekTime();

  // Pops the earliest pending event -- minimum (time, seq) -- into the out
  // parameters. Requires !empty(). `tag` may be nullptr.
  void PopMin(Time* time, std::uint64_t* seq, std::uint64_t* id,
              const char** tag, Callback* cb);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  PoolStats pool_stats() const;

 private:
  struct Event {
    Callback cb;
    Time time = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    const char* tag = nullptr;  // profiling label; not owned
    // Doubly-linked chain of equal-time events in one bucket Entry, in
    // insertion (= seq) order. While the slot is on the free list, `next`
    // doubles as the free-list link.
    std::int32_t prev = -1;
    std::int32_t next = -1;
  };
  // One Entry per distinct pending time in the bucket, sorted descending by
  // time so the bucket minimum is the back. head/tail bound the equal-time
  // chain: head is the oldest (lowest seq, the pop target), tail the newest.
  struct Entry {
    Time time = 0.0;
    std::int32_t head = -1;
    std::int32_t tail = -1;
  };
  struct MapCell {
    std::uint64_t id = 0;   // 0 = empty (the simulator never issues id 0)
    std::int32_t slot = -1;
  };

  std::int32_t AllocSlot();
  void FreeSlot(std::int32_t slot);
  std::size_t BucketIndex(Time t) const;
  void BucketInsert(std::size_t bucket, Time time, std::int32_t slot);
  // Locates the earliest pending entry, advancing cur_day_. Returns the
  // bucket index holding it. Requires !empty().
  std::size_t FindMinBucket();
  // Rebuilds the calendar for the current live set: re-estimates the width,
  // picks a new bucket count and redistributes every pending entry (chains
  // move wholesale -- a time value lives in exactly one Entry).
  void Rebuild();
  double EstimateWidth() const;
  void MaybeResizeAfterInsert();
  void MaybeResizeAfterErase();

  // id -> slot open-addressing table (linear probing, backward-shift
  // deletion). Capacity is a power of two >= 2 * live.
  void MapInsert(std::uint64_t id, std::int32_t slot);
  // Returns the slot for `id`, or -1. If `erase`, removes the mapping.
  std::int32_t MapFind(std::uint64_t id, bool erase);
  void MapGrow();

  std::vector<Event> slab_;
  std::int32_t free_head_ = -1;
  std::vector<std::vector<Entry>> buckets_;
  std::size_t bucket_mask_ = 0;    // buckets_.size() - 1 (power of two)
  double width_ = 1.0;             // seconds per bucket
  double inv_width_ = 1.0;         // 1 / width_ (division off the hot path)
  // Dispatch scan position: the calendar "day" (floor(time / width)) being
  // drained. Inserts rewind it; FindMinBucket advances it.
  std::uint64_t cur_day_ = 0;
  std::size_t live_ = 0;
  std::vector<MapCell> map_;
  std::size_t map_mask_ = 0;
  std::size_t map_used_ = 0;
  // Scan-cost trigger: a calendar whose width no longer matches the live
  // distribution walks many empty buckets per pop; when the walk-to-pop
  // ratio degenerates the queue re-estimates the width. Counts, not clocks.
  std::uint64_t scan_steps_ = 0;
  std::uint64_t pops_ = 0;
  // Shift-cost trigger: the mirror failure mode. A width that is too WIDE
  // for the dense part of the pending set piles many *distinct* times into
  // a few buckets, so sorted inserts memmove O(bucket) Entries -- while
  // producing zero empty-day scan steps, invisibly to the trigger above.
  // Count the Entries displaced per insert and re-estimate when the
  // shift-per-insert ratio degenerates. Equal-time chain appends displace
  // nothing, so a synchronized pileup (which no width can split) cannot
  // storm this trigger. Counts, not clocks.
  std::uint64_t shift_steps_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace omcast::sim
