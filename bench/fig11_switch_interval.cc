// Fig. 11: effect of ROST's switching interval (the paper sweeps 480, 960,
// 1200, 1800 s at 8000 members) on the four metrics. A smaller interval
// gives the overlay more adjustment opportunities: fewer disruptions and a
// smaller delay/stretch, at the cost of more reconnections -- which stay
// small (< ~0.2 per member) even at the smallest interval.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  flags.Define("intervals", "480,960,1200,1800", "switching intervals (s)");
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 11 -- effect of the ROST switching interval", env);

  util::Table table({"interval(s)", "disruptions/node", "delay(ms)", "stretch",
                     "reconnects/node"});
  for (const int interval : flags.GetIntList("intervals")) {
    exp::ScenarioConfig config = env.BaseConfig();
    config.population = env.focus_size;
    config.rost.switching_interval_s = static_cast<double>(interval);
    const auto reps = bench::RunTreeReps(env, exp::Algorithm::kRost, config);
    table.AddRow(
        std::to_string(interval),
        {bench::MeanOf(reps, [](const auto& r) { return r.avg_disruptions; }),
         bench::MeanOf(reps, [](const auto& r) { return r.avg_delay_ms; }),
         bench::MeanOf(reps, [](const auto& r) { return r.avg_stretch; }),
         bench::MeanOf(reps,
                       [](const auto& r) { return r.avg_reconnections; })});
  }
  table.Print(std::cout, "ROST metrics vs switching interval (" +
                             std::to_string(env.focus_size) + " members)");
  return 0;
}
