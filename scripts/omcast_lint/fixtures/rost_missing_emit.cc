// Fixture [rost-event-emit]: a ROST state-transition body missing its
// paired EventKind emission must be flagged at the definition line.
//
// The TaxonomyRegistry() function below references every kSwitch*/kLock*
// kind so the whole-file taxonomy cross-reference (which resolves the real
// src/obs/trace.h by walking up from this file) stays satisfied; the
// per-transition check still inspects each body in isolation.
namespace fixture {

enum class EventKind : int {
  kSwitchAttempt,
  kSwitchCommit,
  kSwitchAbort,
  kLockRequest,
  kLockGrant,
  kLockDeny,
  kLockRelease,
  kLockExpire,
  kLockTimeout,
};

struct Tracer {
  void Emit(EventKind kind, int subject, int detail);
};

class RostProtocol {
 public:
  void GrantLease(int participant, int serial);
  void ReleaseLease(int peer, int serial);

 private:
  Tracer* tracer_ = nullptr;
};

void RostProtocol::GrantLease(int participant, int serial) {  // expect(rost-event-emit)
  tracer_->Emit(EventKind::kLockGrant, participant, serial);
  // BUG (deliberate): never schedules the kLockExpire emission.
}

// Negative: a compliant transition emits its paired kind.
void RostProtocol::ReleaseLease(int peer, int serial) {
  tracer_->Emit(EventKind::kLockRelease, peer, serial);
}

// Keeps the file-level taxonomy cross-reference satisfied (every family
// kind has an emit site somewhere in this file).
inline void TaxonomyRegistry(Tracer* tracer) {
  tracer->Emit(EventKind::kSwitchAttempt, 0, 0);
  tracer->Emit(EventKind::kSwitchCommit, 0, 0);
  tracer->Emit(EventKind::kSwitchAbort, 0, 0);
  tracer->Emit(EventKind::kLockRequest, 0, 0);
  tracer->Emit(EventKind::kLockDeny, 0, 0);
  tracer->Emit(EventKind::kLockExpire, 0, 0);
  tracer->Emit(EventKind::kLockTimeout, 0, 0);
}

}  // namespace fixture
