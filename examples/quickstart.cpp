// Quickstart: build a GT-ITM topology, run a churned multicast session under
// ROST, and print reliability/quality metrics next to the minimum-depth
// baseline.
//
//   ./examples/quickstart [--population=600] [--seed=1]
#include <iostream>

#include "exp/scenario.h"
#include "net/topology.h"
#include "rand/rng.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace omcast;

  util::FlagSet flags;
  flags.Define("population", "600", "steady-state members")
      .Define("seed", "1", "random seed");
  if (!flags.Parse(argc, argv)) return 1;

  // 1. An underlying network: transit-stub, ~2300 end hosts.
  rnd::Rng topo_rng(42);
  const net::Topology topology =
      net::Topology::Generate(net::SmallTopologyParams(), topo_rng);
  std::cout << "topology: " << topology.num_stub_nodes() << " stub hosts, "
            << topology.num_transit_nodes() << " transit nodes\n";

  // 2. A churn scenario: lognormal lifetimes, Pareto bandwidths, Poisson
  //    arrivals sized for the target steady-state population.
  exp::ScenarioConfig config;
  config.population = flags.GetInt("population");
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  config.warmup_s = 1200.0;
  config.measure_s = 2400.0;

  // 3. Run ROST and the min-depth baseline on identical workloads.
  util::Table table({"algorithm", "disruptions/node", "delay(ms)", "stretch",
                     "reconnects/node"});
  for (const exp::Algorithm a :
       {exp::Algorithm::kMinDepth, exp::Algorithm::kRost}) {
    const exp::TreeScenarioResult r = RunTreeScenario(topology, a, config);
    table.AddRow(exp::AlgorithmLabel(a),
                 {r.avg_disruptions, r.avg_delay_ms, r.avg_stretch,
                  r.avg_reconnections});
  }
  table.Print(std::cout, "\nsteady-state comparison (" +
                             std::to_string(config.population) + " members)");
  std::cout << "\nROST moves high bandwidth-time-product members up the "
               "tree, so failures hit\nfewer descendants AND the tree stays "
               "shallower than min-depth's; see DESIGN.md\nand the bench/ "
               "binaries for the full paper reproduction.\n";
  return 0;
}
