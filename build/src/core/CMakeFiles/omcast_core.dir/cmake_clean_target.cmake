file(REMOVE_RECURSE
  "libomcast_core.a"
)
