#include "overlay/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "util/check.h"

namespace omcast::overlay {
namespace {

int CapacityFor(double bandwidth) {
  // Out-degree constraint: number of full-rate children the access link can
  // feed (stream rate is 1 in bandwidth units).
  return static_cast<int>(std::floor(bandwidth));
}

}  // namespace

Tree::Tree(net::HostId root_host, double root_bandwidth) {
  Member root;
  root.id = kRootId;
  root.host = root_host;
  root.bandwidth = root_bandwidth;
  root.reported_bandwidth = root_bandwidth;
  root.capacity = CapacityFor(root_bandwidth);
  root.alive = true;
  root.in_tree = true;
  root.layer = 0;
  root.lifetime = std::numeric_limits<double>::infinity();
  // The source is pre-assigned an effectively infinite age so that it is the
  // oldest member under any time-ordering rule and its BTP dominates every
  // member's (Section 3.3: "the multicast source is preassigned an infinite
  // BTP, and always remains at the top of the tree"). A finite sentinel
  // keeps BTP arithmetic free of inf/NaN.
  root.join_time = -4.0e9;
  members_.push_back(root);
}

NodeId Tree::CreateMember(net::HostId host, double bandwidth,
                          sim::Time join_time, sim::Time lifetime) {
  util::Check(bandwidth >= 0.0, "bandwidth must be non-negative");
  util::Check(lifetime > 0.0, "lifetime must be positive");
  Member m;
  m.id = static_cast<NodeId>(members_.size());
  m.host = host;
  m.bandwidth = bandwidth;
  m.reported_bandwidth = bandwidth;
  m.capacity = CapacityFor(bandwidth);
  m.join_time = join_time;
  m.lifetime = lifetime;
  m.alive = true;
  m.in_tree = false;
  members_.push_back(std::move(m));
  return members_.back().id;
}

Member& Tree::Get(NodeId id) {
  util::Check(id >= 0 && static_cast<std::size_t>(id) < members_.size(),
              "node id out of range");
  return members_[static_cast<std::size_t>(id)];
}

const Member& Tree::Get(NodeId id) const {
  util::Check(id >= 0 && static_cast<std::size_t>(id) < members_.size(),
              "node id out of range");
  return members_[static_cast<std::size_t>(id)];
}

void Tree::Attach(NodeId parent, NodeId child) {
  Member& p = Get(parent);
  Member& c = Get(child);
  util::Check(p.alive && c.alive, "attach requires both members alive");
  util::Check(c.parent == kNoNode, "child already attached");
  util::Check(p.SpareCapacity() > 0, "attach would exceed out-degree");
  util::Check(!IsInSubtreeOf(parent, child), "attach would create a cycle");
  util::Check(IsRooted(parent), "parent must be connected to the root");
  p.children.push_back(child);
  c.parent = parent;
  c.in_tree = true;
  RecomputeLayers(child);
}

void Tree::Detach(NodeId child) {
  Member& c = Get(child);
  util::Check(c.parent != kNoNode, "detach requires an attached member");
  Member& p = Get(c.parent);
  auto it = std::find(p.children.begin(), p.children.end(), child);
  util::Check(it != p.children.end(), "parent/child link out of sync");
  p.children.erase(it);
  c.parent = kNoNode;
  c.in_tree = false;
}

std::vector<NodeId> Tree::RemoveFromTree(NodeId id) {
  Member& m = Get(id);
  if (m.parent != kNoNode) Detach(id);
  std::vector<NodeId> orphans = m.children;
  for (NodeId c : orphans) {
    Member& cm = Get(c);
    cm.parent = kNoNode;
    cm.in_tree = false;
  }
  m.children.clear();
  m.in_tree = false;
  return orphans;
}

bool Tree::IsRooted(NodeId id) const {
  NodeId cur = id;
  while (true) {
    const Member& m = Get(cur);
    if (m.IsRoot()) return true;
    if (m.parent == kNoNode) return false;
    cur = m.parent;
  }
}

bool Tree::IsInSubtreeOf(NodeId id, NodeId maybe_ancestor) const {
  NodeId cur = id;
  while (cur != kNoNode) {
    if (cur == maybe_ancestor) return true;
    cur = Get(cur).parent;
  }
  return false;
}

void Tree::ForEachDescendant(NodeId id,
                             const std::function<void(NodeId)>& fn) const {
  std::vector<NodeId> stack = Get(id).children;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    fn(cur);
    const Member& m = Get(cur);
    stack.insert(stack.end(), m.children.begin(), m.children.end());
  }
}

std::size_t Tree::CountDescendants(NodeId id) const {
  std::size_t n = 0;
  ForEachDescendant(id, [&n](NodeId) { ++n; });
  return n;
}

std::vector<NodeId> Tree::PathToRoot(NodeId id) const {
  std::vector<NodeId> path;
  NodeId cur = id;
  while (cur != kNoNode) {
    path.push_back(cur);
    cur = Get(cur).parent;
  }
  util::Check(Get(path.back()).IsRoot(), "path must end at the root");
  return path;
}

int Tree::SharedPathEdges(NodeId a, NodeId b) const {
  // The root paths share edges from the root down to the lowest common
  // ancestor: w(a,b) == layer(LCA). Walk both parent chains to the root and
  // count the common prefix (from the root side).
  std::vector<NodeId> pa = PathToRoot(a);
  std::vector<NodeId> pb = PathToRoot(b);
  int shared = 0;
  auto ia = pa.rbegin();
  auto ib = pb.rbegin();
  // Skip the root itself (a shared *node*, not edge), then count matching
  // steps; each matching node beyond the root adds one shared edge.
  while (ia != pa.rend() && ib != pb.rend() && *ia == *ib) {
    ++ia;
    ++ib;
    ++shared;
  }
  return shared - 1;  // nodes-in-common minus one == edges in common
}

int Tree::Depth() const {
  int depth = 0;
  for (const Member& m : members_)
    if (m.alive && m.in_tree && IsRooted(m.id)) depth = std::max(depth, m.layer);
  return depth;
}

void Tree::RecomputeLayers(NodeId fragment_root) {
  Member& r = Get(fragment_root);
  util::Check(r.parent != kNoNode, "fragment root must be attached");
  r.layer = Get(r.parent).layer + 1;
  std::vector<NodeId> stack = {fragment_root};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    const int next_layer = Get(cur).layer + 1;
    for (NodeId c : Get(cur).children) {
      Get(c).layer = next_layer;
      stack.push_back(c);
    }
  }
}

void Tree::CheckInvariants() const {
  for (const Member& m : members_) {
    if (!m.alive) {
      util::Check(m.children.empty() && m.parent == kNoNode,
                  "dead member must be fully detached");
      continue;
    }
    util::Check(static_cast<int>(m.children.size()) <= m.capacity,
                "out-degree constraint violated (node " +
                    std::to_string(m.id) + ": " +
                    std::to_string(m.children.size()) + " children, capacity " +
                    std::to_string(m.capacity) + ")");
    for (NodeId c : m.children) {
      const Member& cm = Get(c);
      util::Check(cm.parent == m.id, "child->parent link out of sync");
      util::Check(cm.alive, "dead member still attached");
      if (m.in_tree && IsRooted(m.id))
        util::Check(cm.layer == m.layer + 1, "layer must be parent's + 1");
    }
    if (m.parent != kNoNode) {
      const Member& pm = Get(m.parent);
      util::Check(std::find(pm.children.begin(), pm.children.end(), m.id) !=
                      pm.children.end(),
                  "parent->child link out of sync");
    }
    if (m.IsRoot()) util::Check(m.parent == kNoNode, "root has no parent");
  }
}

}  // namespace omcast::overlay
