file(REMOVE_RECURSE
  "CMakeFiles/omcast_net.dir/topology.cc.o"
  "CMakeFiles/omcast_net.dir/topology.cc.o.d"
  "libomcast_net.a"
  "libomcast_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omcast_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
