"""Fixture-driven selftest: every rule ships a fixture whose `// expect(rule)`
markers pin exactly which (line, rule) pairs must fire.

Semantics (inherited from lint_determinism.py and pinned here):
  * a marker expects a finding on ITS OWN line;
  * the comparison is an exact set match per file -- a missed expectation and
    an unexpected finding are both failures, so rule regressions in either
    direction break the ctest target.
"""

from __future__ import annotations

import re
from pathlib import Path

from .engine import collect_files, lint_file

EXPECT_RE = re.compile(r"//\s*expect\(([a-z\-]+)\)")


def expected_findings(path: Path) -> set[tuple[int, str]]:
    expected: set[tuple[int, str]] = set()
    for i, line in enumerate(
            path.read_text(encoding="utf-8",
                           errors="replace").splitlines(), start=1):
        for m in EXPECT_RE.finditer(line):
            expected.add((i, m.group(1)))
    return expected


def run_selftest(fixture_dir: str) -> int:
    """Returns the number of fixture files that failed (0 = pass)."""
    failures = 0
    files = collect_files([fixture_dir])
    if not files:
        print(f"selftest: no fixtures found under {fixture_dir}")
        return 1
    for path in files:
        expected = expected_findings(path)
        actual = {(f.line, f.rule) for f in lint_file(path)}
        if actual == expected:
            print(f"  PASS {path}")
            continue
        failures += 1
        print(f"  FAIL {path}")
        for line, rule_name in sorted(expected - actual):
            print(f"    missing expected finding: line {line} [{rule_name}]")
        for line, rule_name in sorted(actual - expected):
            print(f"    unexpected finding:       line {line} [{rule_name}]")
    total = len(files)
    print(f"selftest: {total - failures}/{total} fixture files passed")
    return failures
