# Empty compiler generated dependencies file for fig06_member_disruptions.
# This may be replaced when dependencies are built.
