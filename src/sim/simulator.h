// Single-threaded discrete-event simulation engine.
//
// The engine owns a virtual clock (seconds, double) and a pending-event set.
// Events scheduled for the same instant fire in scheduling order, which
// together with seeded RNGs makes every run bit-reproducible.
//
// Two queue implementations sit behind one dispatch contract:
//
//  - QueueKind::kCalendar (default): calendar queue over a pooled event slab
//    (sim/calendar_queue.h) -- O(1) amortized schedule/cancel/dispatch, no
//    per-event heap allocation at steady state. This is the mode that scales
//    to 10^6 members.
//  - QueueKind::kBinaryHeap: the original std::priority_queue binary heap
//    with an unordered_set cancellation ledger, kept verbatim as the
//    baseline the determinism tests and bench/scale_sweep A/B against.
//
// Both modes assign the same sequential EventIds and hand events over in the
// same (time, seq) order, so replay digests -- which hash (time, id) pairs --
// are bit-identical across modes; tests/test_determinism_replay.cc enforces
// this on real scenario cells.
//
// Cancellation is by EventId: timers such as ROST's per-node switching checks
// or CER repair timeouts are cancelled when the owning node departs.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/calendar_queue.h"

namespace omcast::obs {
class SimProfiler;
}  // namespace omcast::obs

namespace omcast::sim {

// Opaque handle for a scheduled event; value-semantic and cheap to copy.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

// Returned by EventId-producing calls that may be "nothing scheduled".
inline constexpr EventId kInvalidEventId{0};

// Pending-event set implementation; see the header comment.
enum class QueueKind {
  kCalendar,
  kBinaryHeap,
};

class Simulator {
 public:
  using Callback = std::function<void()>;
  // Observes every executed event (fired after the clock advanced, before
  // the callback runs). Used by the seed-replay determinism test to build a
  // rolling hash of the event trace; must not mutate the simulation.
  using TraceObserver = std::function<void(Time t, std::uint64_t event_id)>;

  explicit Simulator(QueueKind kind = QueueKind::kCalendar) : kind_(kind) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  QueueKind queue_kind() const { return kind_; }

  // Current virtual time. Starts at 0.
  Time now() const { return now_; }

  // Schedules `cb` at absolute time `t` (must be >= now()). `tag` is an
  // optional event-type label for profiling (obs::SimProfiler); it must be a
  // string literal (or otherwise outlive the event) and never influences
  // scheduling order.
  EventId ScheduleAt(Time t, Callback cb, const char* tag = nullptr);

  // Schedules `cb` at now() + delay (delay must be >= 0).
  EventId ScheduleAfter(Time delay, Callback cb, const char* tag = nullptr);

  // Cancels a pending event. Returns true if the event was still pending.
  // Safe to call with an already-fired or invalid id.
  bool Cancel(EventId id);

  // True if `id` is scheduled and not yet fired or cancelled.
  bool IsPending(EventId id) const;

  // Runs until the queue is empty or Stop() is called.
  void Run();

  // Runs events with time <= t, then advances the clock to exactly t
  // (even if the queue still holds later events).
  void RunUntil(Time t);

  // Requests Run()/RunUntil() to return after the current callback.
  void Stop() { stopped_ = true; }

  // Number of callbacks executed so far (for tests and micro-benches).
  std::uint64_t executed_count() const { return executed_; }

  // Number of events currently pending.
  std::size_t pending_count() const {
    return kind_ == QueueKind::kCalendar ? calendar_.size() : pending_.size();
  }

  // Event-pool occupancy of the calendar queue (zeros in heap mode, which
  // has no pool). Surfaced through obs::SimProfiler and --profile tables.
  CalendarQueue::PoolStats pool_stats() const {
    return kind_ == QueueKind::kCalendar ? calendar_.pool_stats()
                                         : CalendarQueue::PoolStats{};
  }

  // Installs (or clears, with nullptr) the per-event trace observer.
  void SetTraceObserver(TraceObserver observer) {
    trace_ = std::move(observer);
  }

  // Installs (or clears, with nullptr) a profiler that brackets every
  // dispatched callback with wall-time measurement and queue-depth sampling,
  // and times the run loop itself (queue-operation cost included).
  // Profiling never touches sim time or event order, so it is safe to attach
  // to a deterministic run; the profiler must outlive Run()/RunUntil().
  void SetProfiler(obs::SimProfiler* profiler) { profiler_ = profiler; }

 private:
  struct Event {
    Time time = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break at equal times
    std::uint64_t id = 0;
    const char* tag = nullptr;  // profiling label; not owned
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops and runs the next non-cancelled event; returns false if none left.
  bool RunOne();
  // Executes one popped event: clock advance, ordering DCHECKs, trace hook,
  // profiler bracketing. Shared by both queue modes.
  void Dispatch(Time time, std::uint64_t seq, std::uint64_t id,
                const char* tag, Callback cb);

  const QueueKind kind_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;  // 0 is kInvalidEventId
  std::uint64_t executed_ = 0;
  // Sequence number of the most recently executed event at the current
  // instant; used by the DCHECK tier to assert FIFO order at equal times.
  std::uint64_t last_seq_at_now_ = std::numeric_limits<std::uint64_t>::max();
  bool stopped_ = false;
  // kCalendar state.
  CalendarQueue calendar_;
  // kBinaryHeap state (the seed implementation, unchanged).
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Never iterated: membership-only cancellation ledger, so the hash order
  // cannot leak into protocol decisions.
  // omcast-lint: allow(unordered-iter)
  std::unordered_set<std::uint64_t> pending_;
  TraceObserver trace_;
  obs::SimProfiler* profiler_ = nullptr;  // not owned
};

}  // namespace omcast::sim
