#!/usr/bin/env python3
"""Compatibility shim: the determinism linter now lives in the
scripts/omcast_lint/ package (rule registry, shared tokenizer, SARIF
output, committed-baseline workflow, stale-suppression audit). This entry
point keeps the historical CLI working unchanged:

    python3 scripts/lint_determinism.py src/
    python3 scripts/lint_determinism.py --selftest tests/lint_fixtures
    python3 scripts/lint_determinism.py --list-rules

New code should invoke `scripts/omcast-lint` directly -- same engine, plus
--baseline/--sarif and the concurrency/protocol rules' documentation in
scripts/omcast_lint/.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from omcast_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
