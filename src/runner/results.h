// Structured results for a figure grid: per-cell records plus
// mean/stddev/95%-CI aggregates, emitted as both the existing aligned text
// tables (via util::Table helpers in bench_common.h) and a versioned JSON
// document under results/, which doubles as the run manifest (seed, scale,
// reps, git SHA, wall-clock per cell) and as the resume source for
// interrupted sweeps.
//
// JSON schema, version 3 (`"kind": "omcast-figure-results"`):
//   {
//     "schema_version": 3, "kind": "omcast-figure-results",
//     "figure": "fig04_disruptions", "title": "...",
//     "scale": "small", "git_sha": "...", "base_seed": 1,
//     "reps": 3, "threads": 8, "warmup_s": 5400, "measure_s": 3600,
//     "row_header": "size", "rows": [...], "cols": [...],
//     "headline_metric": "disruptions",
//     "wall_ms_total": ..., "executed": N, "resumed": M,
//     "cells": [ {"row": "...", "col": "...", "rep": 0, "seed": ...,
//                 "wall_ms": ..., "resumed": false, "metrics": {...},
//                 "samples": {...}, "series": {"name": [[t, v], ...]},
//                 "registry": {"rost.switches": ..., ...},
//                 "timeseries": {"chaos.unrooted_members":
//                     {"kind": 1, "window_s": 5, "points": [[t, v], ...]}},
//                 "incidents": {"incident.count": ...,
//                               "incident.phase.reattach.p99_s": ...}} ],
//     "aggregates": [ {"row": "...", "col": "...", "metric": "...",
//                      "n": 3, "mean": ..., "stddev": ..., "ci95": ...,
//                      "min": ..., "max": ...} ]
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/grid.h"
#include "runner/json.h"
#include "runner/runner.h"
#include "util/stats.h"

namespace omcast::runner {

// v1 -> v2: cells gained an optional "registry" object (flattened
// obs::Registry snapshot); resume additionally gates on schema_version.
// v2 -> v3: cells gained optional "timeseries" (windowed recovery curves:
// kind, window_s, dense [t, v] points) and "incidents" (per-disruption
// lifecycle stats) objects; both feed DigestOutcomes, so resuming across
// versions would silently change digests -- the version gate re-runs
// instead.
inline constexpr int kResultsSchemaVersion = 3;
inline constexpr const char* kResultsKind = "omcast-figure-results";

// Run-level manifest fields recorded alongside the grid results.
struct RunInfo {
  std::string scale;    // "small" | "paper" | test label
  std::string git_sha;  // from $OMCAST_GIT_SHA; "unknown" if unset
  std::uint64_t base_seed = 1;
  double warmup_s = 0.0;
  double measure_s = 0.0;
};

// Serializes one outcome to its "cells" array entry.
Json CellToJson(const CellOutcome& cell);

// Restores metrics/samples/series/wall_ms from a "cells" entry. Returns
// false (leaving `out` untouched) on a malformed entry.
bool CellFromJson(const Json& cell, CellOutcome* out);

// Looks up `ctx` in a previous results document: an entry matches when row,
// col, rep AND the derived seed agree (a seed mismatch means the sweep
// parameters changed, so the cached cell is stale). Used by RunGrid.
bool FindResumedCell(const Json& doc, const CellContext& ctx,
                     CellOutcome* out);

// Aggregation over the outcomes of one grid run.
class ResultsSink {
 public:
  ResultsSink(const GridSpec& spec, const RunInfo& info,
              GridRunSummary summary);

  const GridRunSummary& summary() const { return summary_; }
  const std::vector<CellOutcome>& cells() const { return summary_.cells; }

  // The outcome of one (row, col, rep) cell.
  const CellOutcome& Cell(std::size_t row, std::size_t col, int rep) const;

  // Mean/stddev/CI of `metric` across the reps of (row, col). Cells that
  // did not record the metric contribute nothing (n shrinks).
  util::RunningStat Stat(std::size_t row, std::size_t col,
                         const std::string& metric) const;

  // Sample vectors named `name` concatenated across the reps of (row, col),
  // in rep order (for CDFs pooled over repetitions).
  std::vector<double> PooledSamples(std::size_t row, std::size_t col,
                                    const std::string& name) const;

  // Full document (cells + aggregates + manifest fields).
  Json ToJson() const;

  // Writes ToJson() to `path` (pretty-printed). Returns false on I/O error.
  bool WriteJson(const std::string& path) const;

 private:
  GridSpec spec_;  // copy without the run closure
  RunInfo info_;
  GridRunSummary summary_;
};

}  // namespace omcast::runner
