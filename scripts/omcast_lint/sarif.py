"""SARIF 2.1.0 output so CI (and editors) can ingest omcast-lint findings.

Only the subset of the schema we emit is modelled; validate() structurally
checks an emitted document against that subset and is what the
`--sarif-selftest` CI step runs.
"""

from __future__ import annotations

import json
from pathlib import Path

from . import TOOL_NAME, TOOL_URI, __version__
from .baseline import fingerprints
from .registry import all_rule_descriptions, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _uri(path: Path, root: Path) -> str:
    p = path.resolve()
    try:
        return p.relative_to(root.resolve()).as_posix()
    except ValueError:
        return p.as_posix()


def render(findings: list[Finding], root: Path) -> dict:
    rules = [{"id": name, "shortDescription": {"text": summary}}
             for name, summary in all_rule_descriptions()]
    results = []
    for f, fp in zip(findings, fingerprints(findings, root)):
        results.append({
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": _uri(f.path, root)},
                    "region": {"startLine": f.line},
                },
            }],
            "partialFingerprints": {"omcastLintFingerprint/v1": fp},
        })
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "version": __version__,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def write(path: Path, findings: list[Finding], root: Path) -> None:
    path.write_text(json.dumps(render(findings, root), indent=2) + "\n",
                    encoding="utf-8")


def validate(doc: dict) -> list[str]:
    """Structural check of the SARIF subset this tool emits; returns a list
    of problems (empty = valid)."""
    problems: list[str] = []

    def need(cond: bool, what: str) -> bool:
        if not cond:
            problems.append(what)
        return cond

    if not need(isinstance(doc, dict), "document must be an object"):
        return problems
    need(doc.get("version") == SARIF_VERSION,
         f"version must be {SARIF_VERSION!r}")
    need(isinstance(doc.get("$schema"), str), "$schema must be a string")
    runs = doc.get("runs")
    if not need(isinstance(runs, list) and len(runs) == 1,
                "runs must be a single-element array"):
        return problems
    run = runs[0]
    driver = run.get("tool", {}).get("driver", {})
    need(driver.get("name") == TOOL_NAME, "tool.driver.name mismatch")
    need(isinstance(driver.get("informationUri"), str),
         "tool.driver.informationUri must be a string")
    rules = driver.get("rules")
    if need(isinstance(rules, list) and rules, "driver.rules must be "
                                               "a non-empty array"):
        ids = set()
        for r in rules:
            if not need(isinstance(r.get("id"), str), "rule id missing"):
                continue
            ids.add(r["id"])
            need(isinstance(r.get("shortDescription", {}).get("text"), str),
                 f"rule {r['id']}: shortDescription.text missing")
    else:
        ids = set()
    results = run.get("results")
    if not need(isinstance(results, list), "run.results must be an array"):
        return problems
    for i, res in enumerate(results):
        where = f"results[{i}]"
        need(res.get("ruleId") in ids,
             f"{where}: ruleId not declared in driver.rules")
        need(res.get("level") == "error", f"{where}: level must be 'error'")
        need(isinstance(res.get("message", {}).get("text"), str),
             f"{where}: message.text missing")
        locs = res.get("locations")
        if not need(isinstance(locs, list) and len(locs) == 1,
                    f"{where}: locations must be a single-element array"):
            continue
        phys = locs[0].get("physicalLocation", {})
        need(isinstance(phys.get("artifactLocation", {}).get("uri"), str),
             f"{where}: artifactLocation.uri missing")
        start = phys.get("region", {}).get("startLine")
        need(isinstance(start, int) and start >= 1,
             f"{where}: region.startLine must be a positive integer")
        need(isinstance(res.get("partialFingerprints", {})
                        .get("omcastLintFingerprint/v1"), str),
             f"{where}: partialFingerprints missing")
    return problems
