file(REMOVE_RECURSE
  "CMakeFiles/ablation_btp.dir/ablation_btp.cc.o"
  "CMakeFiles/ablation_btp.dir/ablation_btp.cc.o.d"
  "ablation_btp"
  "ablation_btp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_btp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
