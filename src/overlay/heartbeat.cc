#include "overlay/heartbeat.h"

#include "obs/trace.h"
#include "util/check.h"

namespace omcast::overlay {

HeartbeatService::HeartbeatService(Session& session, HeartbeatParams params,
                                   std::uint64_t seed,
                                   sim::FaultPlane* fault_plane)
    : session_(session),
      params_(params),
      rng_(seed),
      fault_plane_(fault_plane) {
  util::Check(params_.period_s > 0.0, "heartbeat period must be positive");
  util::Check(params_.miss_threshold >= 1,
              "suspicion needs at least one missed heartbeat");
  session_.hooks().AddOnAttached([this](NodeId id, NodeId) {
    StartSender(id);
    StateFor(id).parent_died_at = -1.0;
    ArmMonitor(id);
  });
  session_.hooks().AddOnDeparture([this](NodeId departed) {
    // Stamp the actual death time on each soon-to-be orphan for the
    // detection-latency metric (fires before the tree is modified).
    const sim::Time now = session_.simulator().now();
    for (NodeId c : session_.tree().Get(departed).children)
      StateFor(c).parent_died_at = now;
  });
  session_.hooks().AddOnMemberDeparted(
      [this](const Member& m) { StopAll(m.id); });
  // The source never joins, so no OnAttached fires for it; it heartbeats
  // its children from the start.
  StartSender(kRootId);
}

HeartbeatService::State& HeartbeatService::StateFor(NodeId id) {
  if (state_.size() <= static_cast<std::size_t>(id))
    state_.resize(static_cast<std::size_t>(id) + 1);
  return state_[static_cast<std::size_t>(id)];
}

void HeartbeatService::StartSender(NodeId id) {
  State& st = StateFor(id);
  if (st.sender != sim::kInvalidEventId) return;  // already beating
  // Random phase: deployments do not fire their timers in lockstep.
  st.sender = session_.simulator().ScheduleAfter(
      rng_.Uniform(0.0, params_.period_s), [this, id] { SendBeats(id); },
      "heartbeat.send");
}

void HeartbeatService::SendBeats(NodeId id) {
  State& st = StateFor(id);
  st.sender = sim::kInvalidEventId;
  const Member& m = session_.tree().Get(id);
  if (!m.alive) return;
  for (NodeId c : m.children) {
    ++sent_;
    const double hop = session_.DelayMs(id, c) / 1000.0;
    if (fault_plane_ != nullptr) {
      fault_plane_->Deliver(id, c, hop,
                            [this, c, id] { OnHeartbeat(c, id); });
    } else {
      session_.simulator().ScheduleAfter(
          hop, [this, c, id] { OnHeartbeat(c, id); }, "heartbeat.deliver");
    }
  }
  st.sender = session_.simulator().ScheduleAfter(
      params_.period_s, [this, id] { SendBeats(id); }, "heartbeat.send");
}

void HeartbeatService::OnHeartbeat(NodeId child, NodeId from) {
  const Member& m = session_.tree().Get(child);
  if (!m.alive) return;
  // A beat from anyone but the *current* parent is stale news (the sender
  // was demoted, or the child was re-parented while the beat was in
  // flight); it must not keep a dead parent's ghost alive.
  if (m.parent != from) return;
  StateFor(child).parent_died_at = -1.0;
  ArmMonitor(child);
}

void HeartbeatService::ArmMonitor(NodeId child) {
  if (child == kRootId) return;  // the source has no parent to monitor
  State& st = StateFor(child);
  if (st.monitor != sim::kInvalidEventId)
    session_.simulator().Cancel(st.monitor);
  st.monitor = session_.simulator().ScheduleAfter(
      SuspicionTimeout(), [this, child] { Suspect(child); },
      "heartbeat.monitor");
}

void HeartbeatService::Suspect(NodeId child) {
  State& st = StateFor(child);
  st.monitor = sim::kInvalidEventId;
  Member& m = session_.tree().Get(child);
  if (!m.alive) return;
  obs::Tracer* tracer = session_.tracer();
  if (tracer != nullptr) {
    const sim::Time now = session_.simulator().now();
    tracer->Emit(now, obs::EventKind::kHeartbeatMiss, child, m.parent);
    tracer->Emit(now,
                 m.parent == kNoNode ? obs::EventKind::kSuspicion
                                     : obs::EventKind::kFalseSuspicion,
                 child, m.parent);
  }

  if (m.parent == kNoNode) {
    // The parent really did die (the session orphaned this member when it
    // happened); the silence is how the member finds out.
    ++detections_;
    if (st.parent_died_at >= 0.0)
      latency_.Add(session_.simulator().now() - st.parent_died_at);
    st.parent_died_at = -1.0;
    session_.RejoinOrphan(child);
    return;
  }

  // The parent is attached and alive -- every heartbeat of the window was
  // lost. The child cannot tell this apart from a real death: it detaches
  // and rejoins (a disruption-free reconnection, charged as overhead).
  ++false_suspicions_;
  session_.tree().Detach(child);
  session_.ForceRejoin(child);
}

void HeartbeatService::StopAll(NodeId id) {
  State& st = StateFor(id);
  if (st.sender != sim::kInvalidEventId) {
    session_.simulator().Cancel(st.sender);
    st.sender = sim::kInvalidEventId;
  }
  if (st.monitor != sim::kInvalidEventId) {
    session_.simulator().Cancel(st.monitor);
    st.monitor = sim::kInvalidEventId;
  }
  st.parent_died_at = -1.0;
}

}  // namespace omcast::overlay
