file(REMOVE_RECURSE
  "libomcast_net.a"
)
