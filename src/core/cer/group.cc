#include "core/cer/group.h"

#include <algorithm>

#include "core/cer/mlc.h"
#include "core/cer/partial_tree.h"

namespace omcast::core {

using overlay::NodeId;
using overlay::Session;

std::vector<NodeId> SelectRecoveryGroup(Session& session, NodeId requester,
                                        int k, GroupSelection selection) {
  std::vector<NodeId> known = session.SampleCandidates(
      session.params().candidate_sample_size, requester);
  std::erase(known, requester);
  std::erase(known, overlay::kRootId);  // the source streams, it is not a
                                        // residual-bandwidth repair peer

  std::vector<NodeId> group;
  if (selection == GroupSelection::kMlc) {
    const PartialTree view = PartialTree::Build(session.tree(), known);
    group = FindMlcGroup(view, k, requester, session.rng());
  } else {
    group = session.rng().SampleWithoutReplacement(
        std::move(known), static_cast<std::size_t>(k));
  }
  std::erase(group, overlay::kRootId);

  std::sort(group.begin(), group.end(), [&](NodeId a, NodeId b) {
    return session.DelayMs(requester, a) < session.DelayMs(requester, b);
  });
  return group;
}

}  // namespace omcast::core
