# Empty dependencies file for test_multi_tree.
# This may be replaced when dependencies are built.
