// Unit tests for the incident flight recorder (obs::IncidentLog) on
// synthetic traces: every lifecycle edge the stitcher owns -- the three
// kOrphaned causes and kReconnectStart, suspicion/detection timestamps,
// reattach edges, the awaiting-cadence path through kPlaybackRegime,
// terminal departures and abandoned re-entries, supersession on re-orphan,
// ROST switch handshakes, clique delegate promotions -- plus the
// robustness contract: orphaned terminal events tally instead of crashing
// and Finalize() closes stragglers deterministically in subject order.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/incident.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace omcast {
namespace {

using obs::EventKind;
using obs::IncidentLog;
using obs::TraceEvent;

TraceEvent Ev(double t, EventKind kind, std::int64_t subject,
              std::int64_t peer = -1, std::int64_t detail = 0) {
  TraceEvent ev;
  ev.t = t;
  ev.kind = kind;
  ev.subject = subject;
  ev.peer = peer;
  ev.detail = detail;
  return ev;
}

TEST(IncidentLog, ParentDeathLifecycleRecordsEveryPhase) {
  IncidentLog log;
  log.OnEvent(Ev(10.0, EventKind::kOrphaned, 7, 3, /*detail=*/0));
  log.OnEvent(Ev(11.0, EventKind::kHeartbeatMiss, 7, 3));
  log.OnEvent(Ev(12.5, EventKind::kSuspicion, 7));
  log.OnEvent(Ev(15.0, EventKind::kRejoin, 7, 4));
  log.Finalize(100.0);

  ASSERT_EQ(log.incidents().size(), 1u);
  const IncidentLog::Incident& inc = log.incidents().front();
  EXPECT_EQ(inc.subject, 7);
  EXPECT_EQ(inc.cause, IncidentLog::Cause::kParentDeath);
  EXPECT_EQ(inc.t_open, 10.0);
  EXPECT_EQ(inc.t_suspect, 11.0);
  EXPECT_EQ(inc.t_detect, 12.5);
  EXPECT_EQ(inc.t_reattach, 15.0);
  // Playback never left nominal cadence, so reattach IS recovery.
  EXPECT_EQ(inc.close, IncidentLog::Close::kRecovered);
  EXPECT_EQ(inc.t_close, 15.0);

  const std::map<std::string, double> stats = log.FlatStats();
  EXPECT_EQ(stats.at("incident.count"), 1.0);
  EXPECT_EQ(stats.at("incident.cause.parent_death"), 1.0);
  EXPECT_EQ(stats.at("incident.reattached"), 1.0);
  EXPECT_EQ(stats.at("incident.recovered"), 1.0);
  EXPECT_EQ(stats.at("incident.phase.suspect.mean_s"), 1.0);
  EXPECT_EQ(stats.at("incident.phase.detect.mean_s"), 2.5);
  EXPECT_EQ(stats.at("incident.phase.reattach.mean_s"), 5.0);
  EXPECT_EQ(stats.at("incident.phase.total.mean_s"), 5.0);
}

TEST(IncidentLog, OrphanDetailSelectsTheCause) {
  IncidentLog log;
  log.OnEvent(Ev(1.0, EventKind::kOrphaned, 1, 9, /*detail=*/0));
  log.OnEvent(Ev(1.0, EventKind::kOrphaned, 2, 9, /*detail=*/1));
  log.OnEvent(Ev(1.0, EventKind::kOrphaned, 3, 9, /*detail=*/2));
  log.OnEvent(Ev(2.0, EventKind::kReconnectStart, 4, 9));
  log.Finalize(5.0);
  const std::map<std::string, double> stats = log.FlatStats();
  EXPECT_EQ(stats.at("incident.count"), 4.0);
  EXPECT_EQ(stats.at("incident.cause.parent_death"), 1.0);
  EXPECT_EQ(stats.at("incident.cause.eviction"), 1.0);
  EXPECT_EQ(stats.at("incident.cause.dissolve"), 1.0);
  EXPECT_EQ(stats.at("incident.cause.reconnect"), 1.0);
}

TEST(IncidentLog, SuspicionOnlyTimestampsAnOpenIncidentOnce) {
  IncidentLog log;
  // Noise before any incident: ignored, not crashed on.
  log.OnEvent(Ev(0.5, EventKind::kHeartbeatMiss, 7, 3));
  log.OnEvent(Ev(0.6, EventKind::kSuspicion, 7));
  log.OnEvent(Ev(10.0, EventKind::kOrphaned, 7, 3, 0));
  log.OnEvent(Ev(11.0, EventKind::kHeartbeatMiss, 7, 3));
  log.OnEvent(Ev(12.0, EventKind::kHeartbeatMiss, 7, 3));  // first one wins
  log.Finalize(20.0);
  ASSERT_EQ(log.incidents().size(), 1u);
  EXPECT_EQ(log.incidents().front().t_suspect, 11.0);
  EXPECT_EQ(log.FlatStats().at("incident.phase.suspect.count"), 1.0);
  // The pre-incident noise recorded no detect phase on the real incident.
  EXPECT_EQ(log.incidents().front().t_detect, -1.0);
}

TEST(IncidentLog, ReentryLifecycleAndOrphanTerminalEvents) {
  IncidentLog log;
  log.OnEvent(Ev(5.0, EventKind::kReconnectStart, 11, 2));
  log.OnEvent(Ev(9.0, EventKind::kReconnectAttached, 11, 4, /*attempts=*/2));
  // Terminal edge with no matching open incident: tallied, never fatal.
  log.OnEvent(Ev(10.0, EventKind::kReconnectAttached, 99, 4, 1));
  log.Finalize(20.0);
  const std::map<std::string, double> stats = log.FlatStats();
  EXPECT_EQ(stats.at("incident.cause.reconnect"), 1.0);
  EXPECT_EQ(stats.at("incident.recovered"), 1.0);
  EXPECT_EQ(stats.at("incident.orphan_events"), 1.0);
  EXPECT_EQ(stats.at("incident.phase.reattach.mean_s"), 4.0);
  // The stray attach opened nothing: exactly one incident total.
  EXPECT_EQ(stats.at("incident.count"), 1.0);
}

TEST(IncidentLog, AbandonedReentryClosesWithoutReattach) {
  IncidentLog log;
  log.OnEvent(Ev(5.0, EventKind::kReconnectStart, 11, 2));
  log.OnEvent(Ev(30.0, EventKind::kReconnectAbandoned, 11, 2, /*attempts=*/8));
  // The no-host abandon path (subject -1) has nothing open: orphan event.
  log.OnEvent(Ev(31.0, EventKind::kReconnectAbandoned, -1, 2, 0));
  log.Finalize(40.0);
  ASSERT_EQ(log.incidents().size(), 1u);
  EXPECT_EQ(log.incidents().front().close, IncidentLog::Close::kAbandoned);
  const std::map<std::string, double> stats = log.FlatStats();
  EXPECT_EQ(stats.at("incident.abandoned"), 1.0);
  EXPECT_EQ(stats.at("incident.reattached"), 0.0);
  EXPECT_EQ(stats.at("incident.orphan_events"), 1.0);
  EXPECT_FALSE(stats.contains("incident.phase.reattach.count"));
}

TEST(IncidentLog, DepartureClosesAnOpenIncidentTerminally) {
  IncidentLog log;
  log.OnEvent(Ev(10.0, EventKind::kOrphaned, 7, 3, 0));
  log.OnEvent(Ev(14.0, EventKind::kLeave, 7, -1));
  log.Finalize(20.0);
  ASSERT_EQ(log.incidents().size(), 1u);
  EXPECT_EQ(log.incidents().front().close, IncidentLog::Close::kDeparted);
  EXPECT_EQ(log.FlatStats().at("incident.departed"), 1.0);
  // Departed, not recovered: no total-phase latency recorded.
  EXPECT_FALSE(log.FlatStats().contains("incident.phase.total.count"));
}

TEST(IncidentLog, ReorphaningSupersedesTheOpenIncident) {
  IncidentLog log;
  log.OnEvent(Ev(1.0, EventKind::kOrphaned, 7, 3, 0));
  log.OnEvent(Ev(2.0, EventKind::kOrphaned, 7, 5, 1));  // again, new parent
  log.Finalize(9.0);
  ASSERT_EQ(log.incidents().size(), 2u);
  // Close order: the superseded one first, the straggler at Finalize.
  EXPECT_EQ(log.incidents()[0].close, IncidentLog::Close::kSuperseded);
  EXPECT_EQ(log.incidents()[0].t_close, 2.0);
  EXPECT_EQ(log.incidents()[1].close, IncidentLog::Close::kOpenAtEnd);
  EXPECT_EQ(log.incidents()[1].t_close, 9.0);
  const std::map<std::string, double> stats = log.FlatStats();
  EXPECT_EQ(stats.at("incident.count"), 2.0);
  EXPECT_EQ(stats.at("incident.superseded"), 1.0);
  EXPECT_EQ(stats.at("incident.open_at_end"), 1.0);
}

TEST(IncidentLog, DegradedPlaybackDefersRecoveryUntilNominalCadence) {
  IncidentLog log;
  log.OnEvent(Ev(5.0, EventKind::kPlaybackRegime, 7, -1, /*regime=*/1));
  log.OnEvent(Ev(10.0, EventKind::kOrphaned, 7, 3, 0));
  log.OnEvent(Ev(12.0, EventKind::kJoin, 7, 4));  // reattached but degraded
  EXPECT_TRUE(log.incidents().empty());           // still open
  log.OnEvent(Ev(20.0, EventKind::kPlaybackRegime, 7, -1, /*regime=*/0));
  log.Finalize(30.0);
  ASSERT_EQ(log.incidents().size(), 1u);
  const IncidentLog::Incident& inc = log.incidents().front();
  EXPECT_EQ(inc.close, IncidentLog::Close::kRecovered);
  EXPECT_EQ(inc.t_reattach, 12.0);
  EXPECT_EQ(inc.t_close, 20.0);
  const std::map<std::string, double> stats = log.FlatStats();
  EXPECT_EQ(stats.at("incident.phase.reattach.mean_s"), 2.0);
  EXPECT_EQ(stats.at("incident.phase.recover.mean_s"), 8.0);  // 20 - 12
  EXPECT_EQ(stats.at("incident.phase.total.mean_s"), 10.0);   // 20 - 10
}

TEST(IncidentLog, NominalRegimeAloneDoesNotCloseBeforeReattach) {
  IncidentLog log;
  log.OnEvent(Ev(5.0, EventKind::kPlaybackRegime, 7, -1, 2));
  log.OnEvent(Ev(10.0, EventKind::kOrphaned, 7, 3, 0));
  // Cadence returns while the member is still detached: the incident stays
  // open (recovery needs a feed), and the later reattach closes it at once
  // because the regime is already nominal again.
  log.OnEvent(Ev(11.0, EventKind::kPlaybackRegime, 7, -1, 0));
  EXPECT_TRUE(log.incidents().empty());
  log.OnEvent(Ev(13.0, EventKind::kJoin, 7, 4));
  log.Finalize(20.0);
  ASSERT_EQ(log.incidents().size(), 1u);
  EXPECT_EQ(log.incidents().front().close, IncidentLog::Close::kRecovered);
  EXPECT_EQ(log.incidents().front().t_close, 13.0);
}

TEST(IncidentLog, SwitchHandshakeLifecycle) {
  IncidentLog log;
  // Commit path: attempt by 4, participant 9 leases itself to 4, commit.
  log.OnEvent(Ev(1.0, EventKind::kSwitchAttempt, 4, 2));
  log.OnEvent(Ev(1.5, EventKind::kLockGrant, 9, /*initiator=*/4, 1));
  log.OnEvent(Ev(2.0, EventKind::kLockGrant, 10, 4, 2));  // later grant ignored
  log.OnEvent(Ev(3.0, EventKind::kSwitchCommit, 4, 9));
  // Abort path by a different initiator.
  log.OnEvent(Ev(4.0, EventKind::kSwitchAttempt, 5, 2));
  log.OnEvent(Ev(5.0, EventKind::kSwitchAbort, 5, -1, 1));
  // Terminal edges with no open handshake: ignored.
  log.OnEvent(Ev(6.0, EventKind::kSwitchCommit, 5, 9));
  log.OnEvent(Ev(6.0, EventKind::kSwitchAbort, 4, -1, 0));
  log.Finalize(10.0);
  const std::map<std::string, double> stats = log.FlatStats();
  EXPECT_EQ(stats.at("incident.switch.attempts"), 2.0);
  EXPECT_EQ(stats.at("incident.switch.commits"), 1.0);
  EXPECT_EQ(stats.at("incident.switch.aborts"), 1.0);
  EXPECT_EQ(stats.at("incident.phase.switch_lock.mean_s"), 0.5);
  EXPECT_EQ(stats.at("incident.phase.switch_commit.mean_s"), 2.0);
}

TEST(IncidentLog, DelegatePromotionLatencyFromTheLeave) {
  IncidentLog log;
  log.OnEvent(Ev(4.0, EventKind::kLeave, /*old delegate=*/20, 1));
  log.OnEvent(Ev(9.0, EventKind::kCliqueDelegatePromoted, /*successor=*/21,
                /*former=*/20, /*cluster=*/3));
  // Promotion whose predecessor's leave predates the trace: counted, no
  // latency sample.
  log.OnEvent(Ev(9.5, EventKind::kCliqueDelegatePromoted, 31, 30, 4));
  log.Finalize(10.0);
  const std::map<std::string, double> stats = log.FlatStats();
  EXPECT_EQ(stats.at("incident.promotions"), 2.0);
  EXPECT_EQ(stats.at("incident.phase.promotion.count"), 1.0);
  EXPECT_EQ(stats.at("incident.phase.promotion.mean_s"), 5.0);
}

TEST(IncidentLog, FinalizeClosesStragglersInSubjectOrder) {
  IncidentLog log;
  log.OnEvent(Ev(3.0, EventKind::kOrphaned, 30, 1, 0));
  log.OnEvent(Ev(1.0, EventKind::kOrphaned, 10, 1, 0));
  log.OnEvent(Ev(2.0, EventKind::kOrphaned, 20, 1, 0));
  log.Finalize(7.0);
  ASSERT_EQ(log.incidents().size(), 3u);
  EXPECT_EQ(log.incidents()[0].subject, 10);
  EXPECT_EQ(log.incidents()[1].subject, 20);
  EXPECT_EQ(log.incidents()[2].subject, 30);
  for (const IncidentLog::Incident& inc : log.incidents()) {
    EXPECT_EQ(inc.close, IncidentLog::Close::kOpenAtEnd);
    EXPECT_EQ(inc.t_close, 7.0);
  }
}

TEST(IncidentLog, FlatStatsAlwaysEmitsEveryCountKey) {
  IncidentLog log;
  log.Finalize(0.0);
  const std::map<std::string, double> stats = log.FlatStats();
  const char* keys[] = {
      "incident.count",          "incident.cause.parent_death",
      "incident.cause.eviction", "incident.cause.dissolve",
      "incident.cause.reconnect","incident.reattached",
      "incident.recovered",      "incident.abandoned",
      "incident.departed",       "incident.superseded",
      "incident.open_at_end",    "incident.orphan_events",
      "incident.switch.attempts","incident.switch.commits",
      "incident.switch.aborts",  "incident.promotions",
  };
  for (const char* key : keys) {
    ASSERT_TRUE(stats.contains(key)) << key;
    EXPECT_EQ(stats.at(key), 0.0) << key;
  }
  // No observations -> no phase keys at all; exactly the 16 counts above.
  EXPECT_EQ(stats.size(), 16u);
}

TEST(IncidentLog, PercentilesAreExactNearestRank) {
  IncidentLog log;
  // Ten reattach latencies 1..10 s via ten immediate-recovery lifecycles.
  for (int i = 1; i <= 10; ++i) {
    log.OnEvent(Ev(100.0 * i, EventKind::kOrphaned, i, 0, 0));
    log.OnEvent(Ev(100.0 * i + i, EventKind::kRejoin, i, 0));
  }
  log.Finalize(2000.0);
  const std::map<std::string, double> stats = log.FlatStats();
  EXPECT_EQ(stats.at("incident.phase.reattach.count"), 10.0);
  EXPECT_EQ(stats.at("incident.phase.reattach.p50_s"), 5.0);
  EXPECT_EQ(stats.at("incident.phase.reattach.p99_s"), 10.0);
  EXPECT_EQ(stats.at("incident.phase.reattach.max_s"), 10.0);
  EXPECT_EQ(stats.at("incident.phase.reattach.mean_s"), 5.5);
}

TEST(IncidentLog, ExportToFillsCountersAndPhaseHistograms) {
  IncidentLog log;
  log.OnEvent(Ev(10.0, EventKind::kOrphaned, 7, 3, 0));
  log.OnEvent(Ev(15.0, EventKind::kRejoin, 7, 4));
  log.Finalize(20.0);
  obs::Registry reg;
  log.ExportTo(reg);
  EXPECT_EQ(reg.CounterValue("incident.count"), 1.0);
  EXPECT_EQ(reg.CounterValue("incident.recovered"), 1.0);
  const std::map<std::string, double> flat = reg.Flatten();
  EXPECT_EQ(flat.at("incident.phase.reattach_s.count"), 1.0);
  EXPECT_EQ(flat.at("incident.phase.reattach_s.sum"), 5.0);
  EXPECT_EQ(flat.at("incident.phase.total_s.count"), 1.0);
}

TEST(IncidentLog, ConsumesALiveTracerStreamAsASink) {
  // Feeding through a capacity-1 Tracer must see every event (sinks run
  // before ring eviction) -- the run-local incident feed in the harnesses
  // relies on exactly this.
  obs::Tracer tracer(/*capacity=*/1);
  IncidentLog log;
  tracer.AddSink(&log);
  tracer.Emit(10.0, EventKind::kOrphaned, 7, 3, 0);
  tracer.Emit(11.0, EventKind::kHeartbeatMiss, 7, 3);
  tracer.Emit(15.0, EventKind::kRejoin, 7, 4);
  tracer.RemoveSink(&log);
  tracer.Emit(16.0, EventKind::kOrphaned, 8, 3, 0);  // after removal: unseen
  log.Finalize(20.0);
  ASSERT_EQ(log.incidents().size(), 1u);
  EXPECT_EQ(log.incidents().front().t_suspect, 11.0);
  EXPECT_EQ(log.incidents().front().close, IncidentLog::Close::kRecovered);
  EXPECT_EQ(log.FlatStats().at("incident.count"), 1.0);
}

}  // namespace
}  // namespace omcast
