#include "runner/results.h"

#include <fstream>

#include "util/check.h"

namespace omcast::runner {

Json CellToJson(const CellOutcome& cell) {
  Json j = Json::MakeObject();
  j.Set("row", cell.ctx.row_label);
  j.Set("col", cell.ctx.col_label);
  j.Set("rep", cell.ctx.rep);
  j.Set("seed", cell.ctx.seed);
  j.Set("wall_ms", cell.wall_ms);
  j.Set("resumed", cell.resumed);
  Json metrics = Json::MakeObject();
  for (const auto& [name, value] : cell.result.metrics)
    metrics.Set(name, value);
  j.Set("metrics", std::move(metrics));
  if (!cell.result.samples.empty()) {
    Json samples = Json::MakeObject();
    for (const auto& [name, values] : cell.result.samples) {
      Json arr = Json::MakeArray();
      for (const double v : values) arr.Append(v);
      samples.Set(name, std::move(arr));
    }
    j.Set("samples", std::move(samples));
  }
  if (!cell.result.series.empty()) {
    Json series = Json::MakeObject();
    for (const auto& [name, points] : cell.result.series) {
      Json arr = Json::MakeArray();
      for (const auto& [t, v] : points) {
        Json point = Json::MakeArray();
        point.Append(t);
        point.Append(v);
        arr.Append(std::move(point));
      }
      series.Set(name, std::move(arr));
    }
    j.Set("series", std::move(series));
  }
  if (!cell.result.registry.empty()) {
    Json registry = Json::MakeObject();
    for (const auto& [name, value] : cell.result.registry)
      registry.Set(name, value);
    j.Set("registry", std::move(registry));
  }
  if (!cell.result.timeseries.empty()) {
    Json timeseries = Json::MakeObject();
    for (const auto& [name, snap] : cell.result.timeseries) {
      Json entry = Json::MakeObject();
      entry.Set("kind", snap.kind);
      entry.Set("window_s", snap.window_s);
      Json arr = Json::MakeArray();
      for (const auto& [t, v] : snap.points) {
        Json point = Json::MakeArray();
        point.Append(t);
        point.Append(v);
        arr.Append(std::move(point));
      }
      entry.Set("points", std::move(arr));
      timeseries.Set(name, std::move(entry));
    }
    j.Set("timeseries", std::move(timeseries));
  }
  if (!cell.result.incidents.empty()) {
    Json incidents = Json::MakeObject();
    for (const auto& [name, value] : cell.result.incidents)
      incidents.Set(name, value);
    j.Set("incidents", std::move(incidents));
  }
  return j;
}

bool CellFromJson(const Json& cell, CellOutcome* out) {
  const Json* metrics = cell.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return false;
  CellResult result;
  for (const auto& [name, value] : metrics->AsObject()) {
    if (!value.is_number()) return false;
    result.metrics[name] = value.AsDouble();
  }
  if (const Json* samples = cell.Find("samples"); samples != nullptr) {
    if (!samples->is_object()) return false;
    for (const auto& [name, arr] : samples->AsObject()) {
      if (!arr.is_array()) return false;
      std::vector<double>& values = result.samples[name];
      values.reserve(arr.size());
      for (const Json& v : arr.AsArray()) {
        if (!v.is_number()) return false;
        values.push_back(v.AsDouble());
      }
    }
  }
  if (const Json* series = cell.Find("series"); series != nullptr) {
    if (!series->is_object()) return false;
    for (const auto& [name, arr] : series->AsObject()) {
      if (!arr.is_array()) return false;
      auto& points = result.series[name];
      points.reserve(arr.size());
      for (const Json& p : arr.AsArray()) {
        if (!p.is_array() || p.size() != 2) return false;
        const Json::Array& pair = p.AsArray();
        if (!pair[0].is_number() || !pair[1].is_number()) return false;
        points.emplace_back(pair[0].AsDouble(), pair[1].AsDouble());
      }
    }
  }
  if (const Json* registry = cell.Find("registry"); registry != nullptr) {
    if (!registry->is_object()) return false;
    for (const auto& [name, value] : registry->AsObject()) {
      if (!value.is_number()) return false;
      result.registry[name] = value.AsDouble();
    }
  }
  if (const Json* timeseries = cell.Find("timeseries");
      timeseries != nullptr) {
    if (!timeseries->is_object()) return false;
    for (const auto& [name, entry] : timeseries->AsObject()) {
      if (!entry.is_object()) return false;
      const Json* kind = entry.Find("kind");
      const Json* window = entry.Find("window_s");
      const Json* points = entry.Find("points");
      if (kind == nullptr || !kind->is_number() || window == nullptr ||
          !window->is_number() || points == nullptr || !points->is_array())
        return false;
      CellResult::SeriesSnapshot& snap = result.timeseries[name];
      snap.kind = static_cast<int>(kind->AsInt());
      snap.window_s = window->AsDouble();
      snap.points.reserve(points->size());
      for (const Json& p : points->AsArray()) {
        if (!p.is_array() || p.size() != 2) return false;
        const Json::Array& pair = p.AsArray();
        if (!pair[0].is_number() || !pair[1].is_number()) return false;
        snap.points.emplace_back(pair[0].AsDouble(), pair[1].AsDouble());
      }
    }
  }
  if (const Json* incidents = cell.Find("incidents"); incidents != nullptr) {
    if (!incidents->is_object()) return false;
    for (const auto& [name, value] : incidents->AsObject()) {
      if (!value.is_number()) return false;
      result.incidents[name] = value.AsDouble();
    }
  }
  out->result = std::move(result);
  if (const Json* wall = cell.Find("wall_ms");
      wall != nullptr && wall->is_number())
    out->wall_ms = wall->AsDouble();
  return true;
}

bool FindResumedCell(const Json& doc, const CellContext& ctx,
                     CellOutcome* out) {
  const Json* kind = doc.Find("kind");
  if (kind == nullptr || !kind->is_string() ||
      kind->AsString() != kResultsKind)
    return false;
  // Cells from an older schema may lack fields this version records (the
  // registry snapshot, the v3 timeseries/incidents blocks -- all of which
  // feed DigestOutcomes); re-run rather than resume across versions.
  const Json* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->AsInt() != kResultsSchemaVersion)
    return false;
  const Json* figure = doc.Find("figure");
  if (figure == nullptr || !figure->is_string() ||
      figure->AsString() != ctx.figure)
    return false;
  const Json* cells = doc.Find("cells");
  if (cells == nullptr || !cells->is_array()) return false;
  for (const Json& cell : cells->AsArray()) {
    if (!cell.is_object()) continue;
    const Json* row = cell.Find("row");
    const Json* col = cell.Find("col");
    const Json* rep = cell.Find("rep");
    const Json* seed = cell.Find("seed");
    if (row == nullptr || !row->is_string() ||
        row->AsString() != ctx.row_label)
      continue;
    if (col == nullptr || !col->is_string() ||
        col->AsString() != ctx.col_label)
      continue;
    if (rep == nullptr || !rep->is_number() || rep->AsInt() != ctx.rep)
      continue;
    // The seed gate: a stale cache (different base seed, renamed labels
    // hashing differently) must be re-run, not reused.
    if (seed == nullptr || !seed->is_number() || seed->AsUint() != ctx.seed)
      continue;
    return CellFromJson(cell, out);
  }
  return false;
}

ResultsSink::ResultsSink(const GridSpec& spec, const RunInfo& info,
                         GridRunSummary summary)
    : spec_(spec), info_(info), summary_(std::move(summary)) {
  // The sink only needs the grid axes; dropping the closure releases
  // whatever the bench captured in it.
  spec_.run = nullptr;
  util::Check(summary_.cells.size() == spec_.cell_count(),
              "ResultsSink: outcome count does not match the grid");
}

const CellOutcome& ResultsSink::Cell(std::size_t row, std::size_t col,
                                     int rep) const {
  util::Check(row < spec_.rows.size() && col < spec_.cols.size() &&
                  rep >= 0 && rep < spec_.reps,
              "ResultsSink::Cell: index out of range");
  const std::size_t index =
      (row * spec_.cols.size() + col) * static_cast<std::size_t>(spec_.reps) +
      static_cast<std::size_t>(rep);
  return summary_.cells[index];
}

util::RunningStat ResultsSink::Stat(std::size_t row, std::size_t col,
                                    const std::string& metric) const {
  util::RunningStat stat;
  for (int rep = 0; rep < spec_.reps; ++rep) {
    const CellResult& r = Cell(row, col, rep).result;
    const auto it = r.metrics.find(metric);
    if (it != r.metrics.end()) stat.Add(it->second);
  }
  return stat;
}

std::vector<double> ResultsSink::PooledSamples(std::size_t row,
                                               std::size_t col,
                                               const std::string& name) const {
  std::vector<double> out;
  for (int rep = 0; rep < spec_.reps; ++rep) {
    const CellResult& r = Cell(row, col, rep).result;
    const auto it = r.samples.find(name);
    if (it != r.samples.end())
      out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

Json ResultsSink::ToJson() const {
  Json doc = Json::MakeObject();
  doc.Set("schema_version", kResultsSchemaVersion);
  doc.Set("kind", kResultsKind);
  doc.Set("figure", spec_.figure);
  doc.Set("title", spec_.title);
  doc.Set("scale", info_.scale);
  doc.Set("git_sha", info_.git_sha);
  doc.Set("base_seed", info_.base_seed);
  doc.Set("reps", spec_.reps);
  doc.Set("threads", summary_.threads);
  doc.Set("warmup_s", info_.warmup_s);
  doc.Set("measure_s", info_.measure_s);
  doc.Set("row_header", spec_.row_header);
  Json rows = Json::MakeArray();
  for (const std::string& r : spec_.rows) rows.Append(r);
  doc.Set("rows", std::move(rows));
  Json cols = Json::MakeArray();
  for (const std::string& c : spec_.cols) cols.Append(c);
  doc.Set("cols", std::move(cols));
  if (!spec_.headline_metric.empty())
    doc.Set("headline_metric", spec_.headline_metric);
  doc.Set("wall_ms_total", summary_.wall_ms);
  doc.Set("executed", summary_.executed);
  doc.Set("resumed", summary_.resumed);

  Json cells = Json::MakeArray();
  for (const CellOutcome& cell : summary_.cells)
    cells.Append(CellToJson(cell));
  doc.Set("cells", std::move(cells));

  // Aggregates: every metric that appears in any rep of a (row, col),
  // union-ed in deterministic (std::map) name order.
  Json aggregates = Json::MakeArray();
  for (std::size_t row = 0; row < spec_.rows.size(); ++row) {
    for (std::size_t col = 0; col < spec_.cols.size(); ++col) {
      std::map<std::string, util::RunningStat> stats;
      for (int rep = 0; rep < spec_.reps; ++rep)
        for (const auto& [name, value] : Cell(row, col, rep).result.metrics)
          stats[name].Add(value);
      for (const auto& [name, stat] : stats) {
        Json agg = Json::MakeObject();
        agg.Set("row", spec_.rows[row]);
        agg.Set("col", spec_.cols[col]);
        agg.Set("metric", name);
        agg.Set("n", static_cast<std::uint64_t>(stat.count()));
        agg.Set("mean", stat.mean());
        agg.Set("stddev", stat.stddev());
        agg.Set("ci95", stat.ci95_half_width());
        agg.Set("min", stat.min());
        agg.Set("max", stat.max());
        aggregates.Append(std::move(agg));
      }
    }
  }
  doc.Set("aggregates", std::move(aggregates));
  return doc;
}

bool ResultsSink::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson().Dump(/*indent=*/1) << "\n";
  return static_cast<bool>(out);
}

}  // namespace omcast::runner
