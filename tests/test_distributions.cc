#include "rand/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rand/rng.h"

namespace omcast::rnd {
namespace {

TEST(BoundedPareto, SamplesStayInBounds) {
  Rng rng(7);
  const BoundedPareto d = PaperBandwidthDist();
  for (int i = 0; i < 20000; ++i) {
    const double x = d.Sample(rng);
    EXPECT_GE(x, d.lo());
    EXPECT_LE(x, d.hi());
  }
}

TEST(BoundedPareto, CdfEndpoints) {
  const BoundedPareto d(1.2, 0.5, 100.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(100.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.1), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(1000.0), 1.0);
}

TEST(BoundedPareto, PaperFreeRiderFraction) {
  // Section 5: with shape 1.2, bounds [0.5, 100], ~55.5% of members have
  // bandwidth < 1 (zero out-degree -> free-riders).
  const BoundedPareto d = PaperBandwidthDist();
  EXPECT_NEAR(d.Cdf(1.0), 0.555, 0.015);
}

TEST(BoundedPareto, EmpiricalMatchesCdf) {
  Rng rng(11);
  const BoundedPareto d = PaperBandwidthDist();
  const int n = 200000;
  int below1 = 0, below10 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = d.Sample(rng);
    if (x < 1.0) ++below1;
    if (x < 10.0) ++below10;
  }
  EXPECT_NEAR(static_cast<double>(below1) / n, d.Cdf(1.0), 0.01);
  EXPECT_NEAR(static_cast<double>(below10) / n, d.Cdf(10.0), 0.01);
}

TEST(BoundedPareto, SuperNodesExist) {
  // The paper notes a small number of "super-nodes" with out-degree > 20.
  Rng rng(13);
  const BoundedPareto d = PaperBandwidthDist();
  int super = 0;
  for (int i = 0; i < 100000; ++i)
    if (d.Sample(rng) > 20.0) ++super;
  EXPECT_GT(super, 0);
  EXPECT_LT(super, 3000);  // still rare (< 3%)
}

TEST(LognormalDist, MeanMatchesClosedForm) {
  const LognormalDist d = PaperLifetimeDist();
  EXPECT_NEAR(d.Mean(), std::exp(5.5 + 2.0), 1e-9);
  // The paper quotes 1809 s.
  EXPECT_NEAR(d.Mean(), kMeanLifetimeSeconds, 1.5);
}

TEST(LognormalDist, EmpiricalMedian) {
  // Median of lognormal(mu, sigma) is exp(mu) ~= 244.7 s.
  Rng rng(3);
  const LognormalDist d = PaperLifetimeDist();
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(d.Sample(rng));
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(5.5), 15.0);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
    const int k = rng.UniformInt(-2, 2);
    EXPECT_GE(k, -2);
    EXPECT_LE(k, 2);
  }
}

TEST(Rng, DeterministicBySeed) {
  Rng a(99), b(99), c(100);
  bool diverged_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const double xa = a.Uniform(0, 1), xb = b.Uniform(0, 1),
                 xc = c.Uniform(0, 1);
    EXPECT_EQ(xa, xb);
    if (xa != xc) diverged_from_c = true;
  }
  EXPECT_TRUE(diverged_from_c);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  std::vector<int> pool;
  for (int i = 0; i < 50; ++i) pool.push_back(i);
  const auto sample = rng.SampleWithoutReplacement(pool, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<int> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(Rng, SampleLargerThanPoolReturnsAll) {
  Rng rng(5);
  const auto sample = rng.SampleWithoutReplacement(std::vector<int>{1, 2, 3}, 10);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(Rng, ExponentialMeanIsUnbiased) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.ExponentialMean(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

}  // namespace
}  // namespace omcast::rnd
