// Multicast tree structure operations over a member store.
//
// The Tree owns the member records (so ids remain valid for metrics after a
// member departs) and maintains the parent/children/layer relations with
// invariant checking: capacity is never exceeded, layers are always
// parent.layer + 1, and attach never creates a cycle.
#pragma once

#include <functional>
#include <vector>

#include "overlay/member.h"

namespace omcast::overlay {

class Tree {
 public:
  // Creates the store with the root (source) member occupying id 0.
  Tree(net::HostId root_host, double root_bandwidth);

  // Adds a member record (not yet in the tree); returns its id.
  NodeId CreateMember(net::HostId host, double bandwidth, sim::Time join_time,
                      sim::Time lifetime);

  Member& Get(NodeId id);
  const Member& Get(NodeId id) const;
  std::size_t size() const { return members_.size(); }

  // Attaches `child` (possibly the root of an orphaned fragment) under
  // `parent`. Requires spare capacity and that `parent` is rooted and not
  // inside `child`'s fragment. Recomputes layers of the whole fragment.
  void Attach(NodeId parent, NodeId child);

  // Detaches `child` from its parent (keeping its own children): it becomes
  // an orphaned fragment root. No-op layers (fixed on re-attach).
  void Detach(NodeId child);

  // Removes a departing member entirely: detaches it from its parent and
  // orphans each of its children (returned in `orphans`). The member record
  // stays (dead) for metrics.
  std::vector<NodeId> RemoveFromTree(NodeId id);

  // True if walking the parent chain from `id` reaches the root.
  bool IsRooted(NodeId id) const;

  // True if `maybe_ancestor` lies on the parent chain of `id` (inclusive of
  // id itself when equal).
  bool IsInSubtreeOf(NodeId id, NodeId maybe_ancestor) const;

  // Applies `fn` to every member of the subtree rooted at `id`, excluding
  // `id` itself.
  void ForEachDescendant(NodeId id, const std::function<void(NodeId)>& fn) const;

  std::size_t CountDescendants(NodeId id) const;

  // Number of tree edges shared by the root paths of a and b -- the loss
  // correlation function w(a, b) of Section 4.1. Both must be rooted.
  int SharedPathEdges(NodeId a, NodeId b) const;

  // Maximum layer among rooted, alive members.
  int Depth() const;

  // Aborts if any structural invariant is violated (O(n); tests and
  // debug-path use).
  void CheckInvariants() const;

 private:
  void RecomputeLayers(NodeId fragment_root);
  std::vector<NodeId> PathToRoot(NodeId id) const;  // id first, root last

  std::vector<Member> members_;
};

}  // namespace omcast::overlay
