// Degraded-regime grid: the QoE scorecard for the chaos scenario family.
//
// Rows are the three degraded-regime scenarios (all running the full
// hardened stack -- heartbeats, ROST leases over the fault plane, CER
// repair -- with frame-dependency playback enabled):
//
//   join_storm   -- a flash crowd of simultaneous joins lands 10 s into the
//                   stream; new members start mid-GOP and must resync.
//   isp_episode  -- an episodic on/off loss process blankets one stub
//                   domain's links (sim::FaultPlane link groups), an
//                   ISP-level correlated outage.
//   rejoin_load  -- 15% of the membership departs abruptly and re-enters
//                   through the session's bounded-retry re-entry path.
//
// Columns are background control/data-plane loss rates {1%, 5%}. The
// headline metric is qoe degraded_time_fraction: the mean fraction of
// viewing time members spent outside nominal playback cadence. The grid
// also records recovery-to-cadence latency, decode stalls, dependency
// resyncs, permanently stalled sessions, re-entry resolution (pending must
// be zero), wedged leases (must be zero) and unrooted members.
//
//   ./bench/degraded_grid [--population=150] [--stream=90] [--out=results]
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/chaos.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "runner/results.h"
#include "runner/runner.h"
#include "runner/topology_cache.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace omcast;

constexpr double kLossRates[] = {0.01, 0.05};

struct GridOptions {
  int population = 150;
  double warmup_s = 300.0;
  double stream_s = 90.0;
  double drain_s = 90.0;
  std::uint64_t seed = 1;
  double timeseries_window_s = 5.0;  // recovery-curve sampling (0 = off)
  std::string trace_dir;             // per-cell streaming trace JSONL
};

runner::CellResult RunCell(const GridOptions& opt, const net::Topology& topo,
                           const runner::CellContext& cell) {
  exp::ChaosConfig c;
  c.population = opt.population;
  c.warmup_s = opt.warmup_s;
  c.stream_s = opt.stream_s;
  c.drain_s = opt.drain_s;
  c.seed = cell.seed;
  c.fault.loss_rate = kLossRates[cell.col];
  c.fault.dup_prob = 0.01;
  c.fault.jitter_s = 0.02;
  // Cap the root so the tree has real depth at this population (a star
  // would make every scenario trivially nominal).
  c.session.root_bandwidth = 10.0;
  c.rost.switching_interval_s = 120.0;
  c.packet.frame_playback = true;
  switch (cell.row) {
    case 0:  // join_storm: half the steady-state size arrives at once
      c.join_storm_at_s = 10.0;
      c.join_storm_count = opt.population / 2;
      break;
    case 1:  // isp_episode: heavy on/off loss over stub domain 1's links
      c.episodic_at_s = 10.0;
      c.episodic_domain_index = 1;
      c.episodic.loss_rate = 0.9;
      c.episodic.mean_on_s = 4.0;
      c.episodic.mean_off_s = 12.0;
      break;
    case 2:  // rejoin_load: 15% depart and re-enter under load
      c.reconnect_storm_at_s = 10.0;
      c.reconnect_storm_fraction = 0.15;
      c.reconnect_downtime_mean_s = 5.0;
      break;
  }

  obs::Registry reg;
  c.registry = &reg;
  c.timeseries_window_s = opt.timeseries_window_s;
  c.incident_analysis = true;
  bench::CellTraceStream trace(opt.trace_dir, cell);
  c.tracer = trace.tracer();
  const exp::ChaosResult r = exp::RunChaosScenario(topo, c);

  runner::CellResult out;
  out.metrics["degraded_time_fraction"] = r.degraded_time_fraction;
  out.metrics["mean_recovery_to_cadence_s"] = r.mean_recovery_to_cadence_s;
  out.metrics["decode_stalls"] = static_cast<double>(r.decode_stalls);
  out.metrics["regime_transitions"] = static_cast<double>(r.regime_transitions);
  out.metrics["dependency_resyncs"] = static_cast<double>(r.dependency_resyncs);
  out.metrics["permanently_stalled"] =
      static_cast<double>(r.permanently_stalled);
  out.metrics["starving_ratio"] = r.avg_starving_ratio;
  out.metrics["join_storm_injected"] = static_cast<double>(r.join_storm_injected);
  out.metrics["episodes_started"] = static_cast<double>(r.episodes_started);
  out.metrics["reconnect_storm_killed"] =
      static_cast<double>(r.reconnect_storm_killed);
  out.metrics["reentries_scheduled"] =
      static_cast<double>(r.reentries_scheduled);
  out.metrics["reentries_attached"] = static_cast<double>(r.reentries_attached);
  out.metrics["reentries_abandoned"] =
      static_cast<double>(r.reentries_abandoned);
  out.metrics["reentries_pending"] = static_cast<double>(r.reentries_pending);
  out.metrics["wedged_leases"] = static_cast<double>(r.counters.wedged_leases);
  out.metrics["unrooted_members"] = static_cast<double>(r.unrooted_members);
  out.metrics["final_population"] = static_cast<double>(r.final_population);
  out.registry = reg.Flatten();
  out.incidents = r.incidents;
  bench::ExportTimeSeries(reg, &out);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  flags.Define("population", "150", "steady-state member count")
      .Define("warmup", "300", "equilibration seconds before the stream")
      .Define("stream", "90", "packet-level stream seconds per cell")
      .Define("drain", "90", "post-stream drain seconds")
      .Define("seed", "1", "base RNG seed")
      .Define("threads", "1", "worker threads (cells are independent)")
      .Define("out", "", "directory for degraded_grid.json (empty: none)")
      .Define("resume", "false", "reuse matching cells from --out JSON")
      .Define("progress", "true", "per-cell progress lines on stderr")
      .Define("log-level", "warn", "debug | info | warn | error")
      .Define("timeseries", "5", "recovery-curve sampling window s (0 = off)")
      .Define("trace-stream", "",
              "directory for per-cell streaming trace JSONL (empty: off)");
  if (!flags.Parse(argc, argv)) return 1;
  bench::ApplyLogLevelFlag(flags.GetString("log-level"));

  GridOptions opt;
  opt.population = flags.GetInt("population");
  opt.warmup_s = flags.GetDouble("warmup");
  opt.stream_s = flags.GetDouble("stream");
  opt.drain_s = flags.GetDouble("drain");
  opt.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  opt.timeseries_window_s = flags.GetDouble("timeseries");
  opt.trace_dir = flags.GetString("trace-stream");

  std::cout << "=== degraded_grid -- QoE under degraded-regime scenarios ===\n"
            << "population: " << opt.population << "  stream: " << opt.stream_s
            << "s  warmup: " << opt.warmup_s << "s  seed: " << opt.seed
            << "\n\n";

  const net::Topology& topo = runner::SharedTopology(
      net::SmallTopologyParams(), opt.seed ^ 0xde62adULL);

  runner::GridSpec spec;
  spec.figure = "degraded_grid";
  spec.title = "playback QoE across degraded-regime chaos scenarios";
  spec.row_header = "scenario";
  spec.rows = {"join_storm", "isp_episode", "rejoin_load"};
  spec.cols = {"loss=1%", "loss=5%"};
  spec.reps = 1;
  spec.headline_metric = "degraded_time_fraction";
  spec.run = [&opt, &topo](const runner::CellContext& cell) {
    return RunCell(opt, topo, cell);
  };

  runner::RunnerOptions options;
  options.threads = flags.GetInt("threads");
  options.base_seed = opt.seed;
  options.progress = flags.GetBool("progress");
  const std::string out_dir = flags.GetString("out");
  const std::filesystem::path out_path =
      out_dir.empty() ? std::filesystem::path{}
                      : std::filesystem::path(out_dir) / (spec.figure + ".json");
  runner::Json resume_doc;
  if (flags.GetBool("resume") && !out_dir.empty()) {
    std::ifstream in(out_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string error;
      resume_doc = runner::Json::Parse(buf.str(), &error);
      if (resume_doc.is_object()) options.resume = &resume_doc;
    }
  }

  runner::GridRunSummary summary = runner::RunGrid(spec, options);
  runner::RunInfo info;
  info.scale = "degraded_grid";
  info.git_sha = bench::GitSha();
  info.base_seed = opt.seed;
  info.warmup_s = opt.warmup_s;
  info.measure_s = opt.stream_s;
  const runner::ResultsSink sink(spec, info, std::move(summary));

  bench::PrintMetricTable(spec, sink, "degraded_time_fraction", 4,
                          "degraded-session time fraction (headline)");
  bench::PrintMetricTable(spec, sink, "mean_recovery_to_cadence_s", 2,
                          "recovery-to-cadence latency (s)");
  bench::PrintMetricTable(spec, sink, "decode_stalls", 0,
                          "decode stalls (dependency-failed frames)");
  bench::PrintMetricTable(spec, sink, "dependency_resyncs", 0,
                          "dependency resyncs (mid-GOP entries recovered)");
  bench::PrintMetricTable(spec, sink, "reentries_pending", 0,
                          "re-entries unresolved after settle (must be 0)");
  bench::PrintMetricTable(spec, sink, "wedged_leases", 0,
                          "wedged leases (must be 0)");
  bench::PrintMetricTable(spec, sink, "unrooted_members", 0,
                          "members still unrooted after settle");
  bench::PrintRecoveryCurveTable(
      spec, sink, "recovery.degraded_fraction",
      "recovery curve: peak degraded fraction / time back to zero", 3);
  bench::PrintIncidentBreakdownTable(
      spec, sink, "disruption incidents: opened/reattached/recovered");
  bench::PrintIncidentPhaseTable(spec, sink, "recover",
                                 "stream-recovery latency p50/p99 (s)");

  // Health gate: the grid run itself fails if any cell wedged a lease or
  // left a re-entry unresolved, so CI smoke catches regressions without
  // parsing tables.
  bool healthy = true;
  for (std::size_t row = 0; row < spec.rows.size(); ++row)
    for (std::size_t col = 0; col < spec.cols.size(); ++col) {
      if (sink.Stat(row, col, "wedged_leases").mean() != 0.0 ||
          sink.Stat(row, col, "reentries_pending").mean() != 0.0)
        healthy = false;
    }
  if (!healthy) {
    std::cerr << "[degraded_grid] HEALTH GATE FAILED: wedged leases or "
                 "unresolved re-entries\n";
    return 1;
  }

  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    if (!sink.WriteJson(out_path.string())) {
      std::cerr << "[degraded_grid] FAILED to write " << out_path << "\n";
      return 1;
    }
    std::cerr << "[degraded_grid] wrote " << out_path << "\n";
  }
  return 0;
}
