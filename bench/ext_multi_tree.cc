// Extension bench (the paper's future-work direction): redundancy vs
// recovery. Compares, under one interval-based stall metric:
//
//   * single tree, no recovery        (the raw 15 s outages)
//   * single tree + CER (group 3)     (the paper's scheme)
//   * 2 and 3 MDC description trees   (CoopNet-style redundancy, no repair)
//
// MDC stalls only when all descriptions are out at once, but every
// description outage degrades quality; CER keeps full quality and repairs
// the one tree. The table reports both stall and degraded-time ratios.
#include <iostream>

#include "bench_common.h"
#include "stream/multi_tree.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  flags.Define("grow", "1200", "build-up phase seconds (4x arrivals)");
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Extension -- multiple description trees vs CER", env);

  struct Scheme {
    const char* label;
    int trees;
    bool cer;
  };
  const Scheme schemes[] = {
      {"1 tree, no recovery", 1, false},
      {"1 tree + CER (paper)", 1, true},
      {"2 MDC trees", 2, false},
      {"3 MDC trees", 3, false},
  };

  util::Table table({"scheme", "stall(%)", "degraded(%)", "members"});
  for (const Scheme& scheme : schemes) {
    util::RunningStat stall, degraded;
    double members = 0.0;
    for (int rep = 0; rep < env.reps; ++rep) {
      sim::Simulator sim;
      stream::MultiTreeParams p;
      p.trees = scheme.trees;
      p.cer_recovery = scheme.cer;
      stream::MultiTreeStream streams(sim, env.topology, p,
                                      env.seed + static_cast<std::uint64_t>(rep));
      // Build the audience quickly, then settle into normal churn.
      const double rate = env.focus_size / rnd::kMeanLifetimeSeconds;
      const double grow_s = flags.GetDouble("grow");
      streams.StartArrivals(4.0 * rate);
      sim.RunUntil(grow_s);
      streams.StopArrivals();
      streams.StartArrivals(rate);
      const double measure_begin = grow_s + 600.0;
      const double measure_end = measure_begin + env.measure_s;
      sim.RunUntil(measure_end);
      streams.Finalize(measure_begin, measure_end);
      stall.Merge(streams.stall_ratio());
      degraded.Merge(streams.degraded_ratio());
      members += streams.average_population();
    }
    table.AddRow({scheme.label,
                  util::FormatDouble(100.0 * stall.mean(), 3),
                  util::FormatDouble(100.0 * degraded.mean(), 3),
                  util::FormatDouble(members / env.reps, 0)});
  }
  table.Print(std::cout, "stall = all descriptions out; degraded = any out");
  std::cout << "\nMDC trades stalls for (frequent) quality degradation and "
               "splits every uplink\nacross descriptions; CER keeps full "
               "quality and needs no extra coding.\n";
  return 0;
}
