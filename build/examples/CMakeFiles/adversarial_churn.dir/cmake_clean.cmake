file(REMOVE_RECURSE
  "CMakeFiles/adversarial_churn.dir/adversarial_churn.cpp.o"
  "CMakeFiles/adversarial_churn.dir/adversarial_churn.cpp.o.d"
  "adversarial_churn"
  "adversarial_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
