#include "obs/registry.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace omcast::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  util::Check(!bounds_.empty(), "histogram needs at least one bucket bound");
  util::Check(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bucket bounds must be sorted");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  long cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const long next = cumulative + counts_[i];
    if (static_cast<double>(next) >= rank) {
      // Bucket edges, clamped to the observed range so sparse outer buckets
      // cannot stretch the estimate past real data.
      const double lo =
          std::max(min_, i == 0 ? min_ : bounds_[i - 1]);
      const double hi =
          std::min(max_, i < bounds_.size() ? bounds_[i] : max_);
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[i]);
      return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min_,
                        max_);
    }
    cumulative = next;
  }
  return max_;
}

void Histogram::MergeFrom(const Histogram& other) {
  util::Check(bounds_ == other.bounds_,
              "histogram merge requires identical bucket bounds");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
}

void Registry::Count(const std::string& name, double delta) {
  counters_[name] += delta;
}

void Registry::SetGauge(const std::string& name, double value) {
  gauges_[name] = value;
}

Histogram& Registry::Hist(const std::string& name,
                          std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

TimeSeries& Registry::Series(const std::string& name, TimeSeries::Kind kind,
                             double window_s) {
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  return series_.emplace(name, TimeSeries(kind, window_s)).first->second;
}

double Registry::CounterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0.0;
}

std::map<std::string, double> Registry::Flatten() const {
  std::map<std::string, double> out = counters_;
  for (const auto& [name, value] : gauges_) out[name] = value;
  for (const auto& [name, hist] : histograms_) {
    out[name + ".count"] = static_cast<double>(hist.count());
    out[name + ".sum"] = hist.sum();
    out[name + ".min"] = hist.min();
    out[name + ".max"] = hist.max();
    out[name + ".p50"] = hist.Quantile(0.5);
    out[name + ".p99"] = hist.Quantile(0.99);
  }
  return out;
}

void Registry::MergeFrom(const Registry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, hist] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end())
      histograms_.emplace(name, hist);
    else
      it->second.MergeFrom(hist);
  }
  for (const auto& [name, ts] : other.series_) {
    const auto it = series_.find(name);
    if (it == series_.end())
      series_.emplace(name, ts);
    else
      it->second.MergeFrom(ts);
  }
}

}  // namespace omcast::obs
