file(REMOVE_RECURSE
  "CMakeFiles/fig11_switch_interval.dir/fig11_switch_interval.cc.o"
  "CMakeFiles/fig11_switch_interval.dir/fig11_switch_interval.cc.o.d"
  "fig11_switch_interval"
  "fig11_switch_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_switch_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
