"""omcast-lint: repo-specific static analysis for the omcast simulator.

Every figure in this repository is produced by a deterministic seeded
simulation; any source of run-to-run variation (wall clock, unseeded RNG,
hash-order iteration, pointer-valued ties) or any unchecked concurrency
(raw mutexes invisible to clang's -Wthread-safety) silently invalidates
results. This package scans C++ sources for the hazard patterns we care
about, with:

  * a rule registry (`omcast_lint.registry`) -- each rule is a small
    function over a pre-processed SourceFile, registered by decorator;
  * a shared source model (`omcast_lint.source`) -- comment/string
    stripping, a lightweight C++ tokenizer and brace-matched block/function
    extraction used by the protocol-aware rules;
  * an `omcast-lint: allow(<rule>)` escape hatch with stale-suppression
    detection (an allow() that no longer suppresses anything is itself a
    finding);
  * human and SARIF 2.1.0 output, and a committed-baseline workflow so
    pre-existing findings are triaged rather than ignored
    (`omcast_lint.baseline`);
  * per-rule fixtures under `omcast_lint/fixtures/` exercised by
    `--selftest`, run in CI and by ctest.

Entry points: `python3 scripts/omcast-lint` (or `python3 -m omcast_lint`
from scripts/), and `scripts/lint_determinism.py` as a compatibility shim
for the original monolithic linter this package grew out of.
"""

from __future__ import annotations

__version__ = "1.0.0"

TOOL_NAME = "omcast-lint"
TOOL_URI = "https://github.com/omcast/omcast"  # repo-internal tool
