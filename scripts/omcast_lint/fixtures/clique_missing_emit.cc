// Fixture [rost-event-emit, CliqueProtocol table]: the clustered overlay's
// transitions pair with the kClique* taxonomy family. An AttachWithinCluster
// body that reattaches an orphan without emitting kCliqueLocalRecovery must
// be flagged at the definition line -- the bake-off's recovery-locality
// claims are proven from the trace, so a silent local reattach un-checks
// them.
//
// TaxonomyRegistry() references every kClique* kind so the whole-file
// taxonomy cross-reference (resolved against the real src/obs/trace.h by
// walking up from this file) stays satisfied.
namespace fixture {

enum class EventKind : int {
  kCliqueFormed,
  kCliqueElection,
  kCliqueDelegatePromoted,
  kCliqueLocalRecovery,
  kCliqueBackboneReattach,
  kCliqueDissolved,
};

struct Tracer {
  void Emit(EventKind kind, int subject, int peer, int detail);
};

class CliqueProtocol {
 public:
  bool AttachToBackbone(int id);
  bool AttachWithinCluster(int id);

 private:
  Tracer* tracer_ = nullptr;
};

// Negative: a compliant transition emits its paired kind.
bool CliqueProtocol::AttachToBackbone(int id) {
  tracer_->Emit(EventKind::kCliqueBackboneReattach, id, 0, 0);
  return true;
}

bool CliqueProtocol::AttachWithinCluster(int id) {  // expect(rost-event-emit)
  // BUG (deliberate): the orphan reattaches under a same-cluster parent but
  // never emits kCliqueLocalRecovery, so the localized repair is invisible
  // in the trace.
  return id >= 0;
}

// Keeps the file-level taxonomy cross-reference satisfied (every family
// kind has an emit site somewhere in this file).
inline void TaxonomyRegistry(Tracer* tracer) {
  tracer->Emit(EventKind::kCliqueFormed, 0, 0, 0);
  tracer->Emit(EventKind::kCliqueElection, 0, 0, 0);
  tracer->Emit(EventKind::kCliqueDelegatePromoted, 0, 0, 0);
  tracer->Emit(EventKind::kCliqueLocalRecovery, 0, 0, 0);
  tracer->Emit(EventKind::kCliqueBackboneReattach, 0, 0, 0);
  tracer->Emit(EventKind::kCliqueDissolved, 0, 0, 0);
}

}  // namespace fixture
