// Structured protocol trace bus.
//
// Every protocol-level occurrence worth explaining a run with -- joins,
// departures, ROST switch attempts/commits/aborts, the full lock-lease
// handshake, heartbeat misses and suspicions, gossip rounds, ELN
// notifications, CER group formation and stripe repair lifecycle -- is
// emitted as one typed, sim-time-stamped TraceEvent through instrumentation
// seams in sim/, overlay/, core/rost/, core/cer/ and stream/.
//
// Determinism contract: an event carries only replay-deterministic content
// (virtual sim time, a per-tracer monotonically increasing id, node ids and
// protocol serials). Wall-clock never enters a trace payload -- that is what
// obs::SimProfiler is for -- and the determinism lint's trace-wallclock rule
// enforces it. Two runs with the same seed therefore produce byte-identical
// JSONL exports, which the replay digest tests assert.
//
// Overhead contract: components hold a nullable Tracer* (default null) and
// every emission site is guarded by that pointer, so an uninstrumented run
// pays one predictable branch per event and nothing else.
//
// The buffer is a bounded ring: the newest `capacity` events are retained,
// older ones are dropped (and counted), so a tracer can stay attached to an
// arbitrarily long run with bounded memory. Consumers that need *every*
// event of a long run attach a TraceSink (e.g. JsonlStreamSink, which
// writes each event incrementally instead of snapshotting the ring) --
// sinks see each emission before ring eviction can touch it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace omcast::obs {

// The event taxonomy. Names (EventKindName) are part of the JSONL/Perfetto
// schema (scripts/trace_schema.json) -- extend at the end and update the
// schema rather than reordering.
enum class EventKind : int {
  // overlay/session: membership lifecycle.
  kJoin = 0,         // subject attached for the first time; peer = parent
  kRejoin,           // subject re-attached after detach/orphaning; peer = parent
  kLeave,            // subject departed; peer = its parent at death (-1 detached)
  // core/rost: switching and the lock-lease handshake.
  kSwitchAttempt,    // subject's switch condition held; peer = parent
  kSwitchCommit,     // subject swapped with peer (the demoted parent)
  kSwitchAbort,      // handshake completed but swap abandoned; detail = reason
  kLockRequest,      // subject (participant) received peer's lock request
  kLockGrant,        // subject leased itself to peer; detail = lease serial
  kLockDeny,         // subject (initiator) received a deny; detail = hs serial
  kLockRelease,      // subject's lease from peer released; detail = serial
  kLockExpire,       // subject's lease self-expired; detail = lease serial
  kLockTimeout,      // subject's grant-collection window lapsed; detail = hs serial
  // overlay/heartbeat: failure detection.
  kHeartbeatMiss,    // subject's suspicion window lapsed with no parent beat
  kSuspicion,        // subject detected a real parent death (peer = -1)
  kFalseSuspicion,   // subject suspected its live parent (peer = parent)
  // overlay/gossip.
  kGossipRound,      // subject ran one push-pull round; detail = view size
  // stream / core/cer: loss notification and repair.
  kEln,              // subject sent ELNs to its children; detail = hole count
  kCerGroupFormed,   // subject (orphan) formed a group; peer = failed parent,
                     // detail = group id
  kRepairStart,      // subject (server) started a stripe for peer (orphan);
                     // detail = group id
  kRepairFinish,     // subject (server) exhausted its stripe; detail = group id
  kRepairFailover,   // subject (survivor) took over peer's (dead server's)
                     // stripe; detail = group id
  // overlay/session: reconnect/re-entry state machine (degraded regime).
  kReconnectStart,   // subject (successor member) re-entered after downtime;
                     // peer = departed predecessor
  kReconnectAttached,// subject's bounded-retry rejoin attached; peer =
                     // predecessor, detail = attempts used
  kReconnectAbandoned,// subject exhausted its bounded retries and gave up;
                     // peer = predecessor, detail = attempts used
  // stream/packet_sim: frame-dependency playback (degraded regime).
  kDependencyResync, // subject decoded its first on-time reference frame
                     // after a desynced start; detail = decode stalls absorbed
  kPlaybackRegime,   // subject's playback regime changed; detail = new regime
                     // (0 nominal, 1 degraded, 2 stalled)
  kDecodeStall,      // subject's playback window had decode stalls (frames
                     // that arrived but whose reference missed its deadline);
                     // detail = stall count in the window
  // proto/clique: clustered overlay (delegate backbone + leaf cliques).
  kCliqueFormed,     // subject (delegate) founded a new cluster;
                     // detail = cluster id
  kCliqueElection,   // subject (delegate) holds the seat after an election
                     // round over its cluster; detail = cluster id
  kCliqueDelegatePromoted,  // subject (successor) took over peer's (former
                     // delegate's) backbone position; detail = cluster id
  kCliqueLocalRecovery,     // subject reattached inside its own cluster
                     // after an intra-clique parent loss; peer = new parent,
                     // detail = cluster id
  kCliqueBackboneReattach,  // subject (delegate) (re)attached to the
                     // backbone; peer = backbone parent, detail = cluster id
  kCliqueDissolved,  // subject's cluster disbanded (undersized or its
                     // succession timed out); detail = cluster id
  // overlay/session: involuntary detach (the opening edge of a disruption
  // incident; obs::IncidentLog stitches the recovery lifecycle from here).
  kOrphaned,         // subject lost its upstream feed; peer = the failed
                     // parent (kNoNode when there was none); detail = cause
                     // (0 parent death, 1 eviction/false-suspicion detach,
                     // 2 fragment dissolve released the subject)
};

// Stable snake_case name for JSONL/Perfetto export; never renamed, only
// extended (scripts/validate_trace.py pins the set).
const char* EventKindName(EventKind kind);

struct TraceEvent {
  double t = 0.0;             // sim time, seconds
  std::uint64_t id = 0;       // per-tracer emission index (stable, monotonic)
  EventKind kind = EventKind::kJoin;
  std::int64_t subject = -1;  // primary node id
  std::int64_t peer = -1;     // secondary node id (parent, holder, ...); -1 none
  std::int64_t detail = 0;    // kind-specific payload (serial, count, group id)
};

// Appends the JSONL line for one event (WITH the trailing newline):
//   {"t":12.5,"id":3,"kind":"lock_grant","subject":17,"peer":4,"detail":2}
// Shared by Tracer::ToJsonl and JsonlStreamSink so the ring snapshot and the
// streaming export are byte-identical for the events both retain.
void AppendEventJsonl(std::string& out, const TraceEvent& ev);

// Push consumer of the live event stream. Sinks observe every emission in
// order, before ring eviction, so they can retain what the bounded ring
// cannot. Implementations must be deterministic if their output feeds a
// digest, and cell-confined like the Tracer that feeds them.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& ev) = 0;
};

class Tracer {
 public:
  // `capacity` bounds retained events; emissions beyond it evict the oldest.
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  void Emit(double t, EventKind kind, std::int64_t subject,
            std::int64_t peer = -1, std::int64_t detail = 0);

  // Registers a sink (non-owning; it must outlive every Emit). Sinks are
  // notified in registration order. RemoveSink detaches one registration;
  // callers that attach a run-scoped sink to a longer-lived tracer must
  // remove it before the sink dies.
  void AddSink(TraceSink* sink);
  void RemoveSink(TraceSink* sink);

  // Total emissions over the tracer's lifetime (ids run [0, emitted)).
  std::uint64_t emitted() const { return next_id_; }
  // Emissions evicted from the ring.
  std::uint64_t dropped() const { return dropped_; }
  // Events currently retained.
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Retained events, oldest first.
  std::vector<TraceEvent> Events() const;

  // One JSON object per line, oldest first:
  //   {"t":12.5,"id":3,"kind":"lock_grant","subject":17,"peer":4,"detail":2}
  // Doubles are shortest-round-trip (std::to_chars), so equal-seed runs
  // export byte-identical text.
  std::string ToJsonl() const;

  // Chrome trace_event JSON (load in Perfetto / chrome://tracing): instant
  // events on one track per subject node, timestamps in microseconds.
  std::string ToChromeTrace() const;

  // Order-sensitive FNV-1a digest of every retained event, for the replay
  // determinism tests.
  std::uint64_t Digest() const;

  // Discards the retained events. Lifetime tallies (emitted, dropped) keep
  // running, so ids stay unique across a drain-and-clear export loop.
  void Clear();

 private:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  std::size_t capacity_ = 0;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::uint64_t next_id_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceSink*> sinks_;  // non-owning, notification order
};

// Streaming JSONL exporter: one line per event, written incrementally to
// `out` as it is emitted, so arbitrarily long runs keep their full event
// history (the bounded ring silently evicts; this does not). Line format is
// byte-identical to Tracer::ToJsonl() -- equal-seed runs stream identical
// bytes regardless of thread count, which the obs unit tests pin.
//
// The caller owns the stream (and its flushing/closing); one sink writes
// one cell's trace, never shared across threads.
class JsonlStreamSink : public TraceSink {
 public:
  explicit JsonlStreamSink(std::ostream& out);

  void OnEvent(const TraceEvent& ev) override;

  // Events written to the stream over the sink's lifetime.
  std::uint64_t events_written() const { return events_written_; }

 private:
  std::ostream* out_;
  std::string line_;  // reused per event to avoid per-emission allocation
  std::uint64_t events_written_ = 0;
};

}  // namespace omcast::obs
