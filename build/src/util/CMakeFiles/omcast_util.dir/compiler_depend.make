# Empty compiler generated dependencies file for omcast_util.
# This may be replaced when dependencies are built.
