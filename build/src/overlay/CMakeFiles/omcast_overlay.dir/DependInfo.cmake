
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/gossip.cc" "src/overlay/CMakeFiles/omcast_overlay.dir/gossip.cc.o" "gcc" "src/overlay/CMakeFiles/omcast_overlay.dir/gossip.cc.o.d"
  "/root/repo/src/overlay/session.cc" "src/overlay/CMakeFiles/omcast_overlay.dir/session.cc.o" "gcc" "src/overlay/CMakeFiles/omcast_overlay.dir/session.cc.o.d"
  "/root/repo/src/overlay/tree.cc" "src/overlay/CMakeFiles/omcast_overlay.dir/tree.cc.o" "gcc" "src/overlay/CMakeFiles/omcast_overlay.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/omcast_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omcast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rand/CMakeFiles/omcast_rand.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/omcast_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
