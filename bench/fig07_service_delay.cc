// Fig. 7: average end-to-end service delay (ms along the overlay paths) vs
// steady-state network size. ROST should be the best of the three
// distributed algorithms and within ~10-25% of the centralized relaxed-BO.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace omcast;
  util::FlagSet flags;
  bench::DefineCommonFlags(flags);
  if (!flags.Parse(argc, argv)) return 1;
  const bench::BenchEnv env = bench::MakeEnv(flags);
  bench::PrintHeader("Fig. 7 -- avg end-to-end service delay (ms)", env);

  std::vector<std::string> header = {"size"};
  for (const exp::Algorithm a : exp::AllAlgorithms())
    header.push_back(exp::AlgorithmLabel(a));
  util::Table table(std::move(header));

  for (const int size : env.sizes) {
    std::vector<double> row;
    for (const exp::Algorithm a : exp::AllAlgorithms()) {
      exp::ScenarioConfig config = env.BaseConfig();
      config.population = size;
      const auto reps = bench::RunTreeReps(env, a, config);
      row.push_back(
          bench::MeanOf(reps, [](const auto& r) { return r.avg_delay_ms; }));
    }
    table.AddRow(std::to_string(size), row, 1);
  }
  table.Print(std::cout, "avg service delay in ms (rows: steady-state size)");
  return 0;
}
