# Empty compiler generated dependencies file for test_session_dynamics.
# This may be replaced when dependencies are built.
